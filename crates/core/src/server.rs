//! The job-serving subsystem: a persistent solve service with a shared
//! worker pool — `ugd-server`'s core.
//!
//! PR 1's [`crate::runner::solve_parallel_distributed`] spawns and reaps
//! an entire worker fleet *per call*. The deployment model of the paper
//! (ParaSCIP on a standing HLRN III allocation, Table 2's multi-run
//! restart chains) presumes the opposite: a long-lived coordinator that
//! amortizes worker startup across many solves. This module provides
//! that layer:
//!
//! * a [`Server`] accepts **jobs** (instance + root subproblem +
//!   limits) from clients over the same length-prefixed wire codec the
//!   transport already uses, and holds a standing pool of worker
//!   processes that survive across jobs;
//! * a **scheduler** leases free pool workers to queued jobs by
//!   (priority, FIFO) order, bounded by `max_concurrent_jobs`; each
//!   running job gets its own [`crate::supervisor::LoadCoordinator`]
//!   driving its leased workers through a [`JobComm`] — the third
//!   [`crate::comm::LcComm`] back-end;
//! * jobs move through a lifecycle `Queued → Running → {Solved,
//!   Infeasible, TimedOut, Cancelled, Failed}` ([`JobState`]), with
//!   progress streamed to watching clients as [`JobEvent`]s;
//! * a worker that dies mid-job is reported to that job's coordinator
//!   as [`Message::WorkerDied`] (triggering the existing requeue path)
//!   *and* replaced by a pool-refill respawn, so the server degrades
//!   gracefully instead of shrinking forever.
//!
//! Wire protocols (all length-prefixed JSON frames, [`crate::wire`]):
//! clients speak [`ClientRequest`]/[`ServerReply`]; pool workers speak
//! [`PoolHello`]/[`PoolWelcome`] at handshake and then
//! [`PoolDown`]/[`PoolUp`]. The `Begin` frame carrying the instance is
//! encoded **once** per job and the same bytes are written to every
//! leased worker — the instance never re-serializes per rank.

use crate::comm::LcComm;
use crate::ledger::JobLedger;
use crate::messages::Message;
use crate::process::ProcessCommConfig;
use crate::runner::{ParallelOptions, ParallelResult};
use crate::settings::SolverSettings;
use crate::supervisor::LoadCoordinator;
use crate::telemetry::{self, MetricsRegistry, ProgressMsg, ProgressSink, TelemetrySink};
use crate::wire::{self, FrameDecoder};
use crate::worker::{BaseSolver, ParaControl, SolverFactory};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything that crosses a wire in this module: the bound shared by
/// instance, subproblem and solution types.
pub trait WireType: Clone + Send + Serialize + DeserializeOwned + 'static {}
impl<T: Clone + Send + Serialize + DeserializeOwned + 'static> WireType for T {}

/// Bumped on any change to the pool or client protocol; a mismatch at
/// handshake drops the connection instead of desynchronizing the pool.
pub const POOL_PROTOCOL_VERSION: u32 = 4;

// ---------------------------------------------------------------------
// Pool protocol (server ⇄ standing workers)
// ---------------------------------------------------------------------

/// First frame of a connecting pool worker.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PoolHello {
    /// Must equal [`POOL_PROTOCOL_VERSION`].
    pub protocol: u32,
    /// The spawn tag the server passed on the command line, so the
    /// server can marry the connection back to the `Child` it spawned.
    /// `None` for externally started workers.
    pub tag: Option<u64>,
    /// The worker's OS pid (reported even when externally started, so
    /// `ServerStatus` can expose it for targeted kills in tests).
    pub pid: Option<u32>,
}

/// The server's handshake answer: the worker's permanent pool id.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PoolWelcome {
    /// The pool id every later frame names.
    pub worker: u64,
}

/// Server → worker frames after the handshake.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum PoolDown<Inst, Sub, Sol> {
    /// A new job starts on this worker: load the instance. Encoded once
    /// per job; every leased worker receives the identical bytes.
    Begin {
        /// The job the following frames belong to.
        job: u64,
        /// The instance the worker builds its base solver from.
        instance: Inst,
    },
    /// A coordination message of the named job, verbatim.
    Ug {
        /// The addressed job.
        job: u64,
        /// The coordinator's message to this worker.
        msg: Message<Sub, Sol>,
    },
}

/// Worker → server frames after the handshake.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum PoolUp<Sub, Sol> {
    /// Keep-alive, independent of solving.
    Ping {
        /// The sending worker's pool id.
        worker: u64,
    },
    /// A coordination message of the named job. The worker always says
    /// rank 0 about itself; the server rewrites the rank from its lease
    /// table before forwarding to the job's coordinator.
    Ug {
        /// The job this message belongs to.
        job: u64,
        /// The sending worker's pool id.
        worker: u64,
        /// The worker's message to the coordinator.
        msg: Message<Sub, Sol>,
    },
    /// The worker acknowledged the job's `Terminate` and is free again.
    /// Leases are only released on this frame, so a worker still
    /// draining one job can never receive the next job's `Begin`.
    JobDone {
        /// The finished job.
        job: u64,
        /// The now-free worker's pool id.
        worker: u64,
    },
}

/// Serialize-only mirror of [`PoolDown::Ug`] without the instance type
/// parameter: [`JobComm`] does not know `Inst`, and the vendored serde
/// has no `Serialize` for `()` to plug the hole with. Externally-tagged
/// encoding makes this byte-identical to `PoolDown::Ug` — keep the
/// variant shape in sync (covered by a unit test below).
#[derive(serde::Serialize)]
enum PoolDownUg<Sub, Sol> {
    Ug { job: u64, msg: Message<Sub, Sol> },
}

// ---------------------------------------------------------------------
// Client protocol
// ---------------------------------------------------------------------

/// A solve job as submitted by a client.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobSpec<Inst, Sub> {
    /// Free-form label, echoed in status and events.
    pub name: String,
    /// The solver-independent instance (shipped to every leased worker).
    pub instance: Inst,
    /// The root subproblem handed to the job's coordinator.
    pub root: Sub,
    /// Higher runs first; ties broken FIFO by job id.
    pub priority: i32,
    /// Pool workers to lease (clamped to the pool size).
    pub num_solvers: usize,
    /// Per-job wall-clock limit in seconds.
    pub time_limit: f64,
    /// Per-job B&B node limit.
    pub node_limit: Option<u64>,
    /// The submitting tenant's key, for gateway-side admission control
    /// (token-bucket quotas). `None` is the anonymous default tenant; a
    /// plain server ignores it.
    #[serde(default)]
    pub tenant: Option<String>,
    /// Checkpoint JSON (the format
    /// [`ParallelOptions::restart_from`](crate::ParallelOptions)
    /// accepts) this job resumes from instead of starting fresh — how a
    /// gateway replays a dead shard's interrupted job onto a peer so it
    /// continues as run `1.k` of its restart chain.
    #[serde(default)]
    pub restart_from: Option<String>,
    /// The instance's family label (`stp`, `misdp`, `maxcut`, …), set
    /// by the application's job constructors. Drives the `family` label
    /// on `ugrs_server_jobs_*` / `ugrs_gateway_jobs_*` and the
    /// per-family counts of [`FleetStatus`]. `None` renders as
    /// `unknown`.
    #[serde(default)]
    pub family: Option<String>,
    /// FNV-1a 64 checksum (hex) of the source instance file, stamped by
    /// `ugd submit --file`. WALed with the spec, so the job's ledger
    /// record pins exactly which bytes were solved; also journaled as a
    /// [`TelemetryEvent::JobMeta`](crate::telemetry::TelemetryEvent)
    /// head record of the per-job journal.
    #[serde(default)]
    pub checksum: Option<String>,
}

impl<Inst, Sub> JobSpec<Inst, Sub> {
    /// A spec with default priority 0, two solvers and no limits.
    pub fn new(name: impl Into<String>, instance: Inst, root: Sub) -> Self {
        JobSpec {
            name: name.into(),
            instance,
            root,
            priority: 0,
            num_solvers: 2,
            time_limit: f64::INFINITY,
            node_limit: None,
            tenant: None,
            restart_from: None,
            family: None,
            checksum: None,
        }
    }

    /// The `family` metric-label value (`unknown` when unset).
    pub fn family_label(&self) -> &str {
        self.family.as_deref().unwrap_or("unknown")
    }
}

/// Client → server requests.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum ClientRequest<Inst, Sub> {
    /// Enqueue a job; answered with [`ServerReply::Submitted`].
    Submit {
        /// What to solve and under which limits.
        spec: JobSpec<Inst, Sub>,
    },
    /// Cancel a queued or running job (`ok: false` when already done).
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Stream the job's events starting at `from_seq`; the server keeps
    /// sending until the terminal `Finished` event.
    Watch {
        /// The job to watch.
        job: u64,
        /// First event sequence number to send.
        from_seq: usize,
    },
    /// Snapshot of the pool, the queue and every known job.
    Status,
    /// Prometheus-style exposition + per-job progress snapshots
    /// (powers `ugd top` and external scrapers).
    Metrics,
    /// Take a *queued* job back: the work-stealing primitive. Succeeds
    /// only while the job has not started (its ledger record is retired
    /// and it finishes `Cancelled`); a running or terminal job answers
    /// `ok: false` — the caller must leave it where it is.
    Reclaim {
        /// The job to take back.
        job: u64,
    },
    /// Per-shard fleet snapshot. Answered with [`ServerReply::Fleet`]
    /// by a gateway; a plain server answers with an error.
    Fleet,
    /// Stop the server: cancel the queue, drain running jobs.
    Shutdown,
}

/// Server → client replies.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum ServerReply<Sol> {
    /// The job was accepted (and, with a ledger, durably recorded).
    Submitted {
        /// The id all later requests use.
        job: u64,
    },
    /// Answer to [`ClientRequest::Cancel`].
    CancelResult {
        /// The job the cancel addressed.
        job: u64,
        /// False when the job was already terminal or unknown.
        ok: bool,
    },
    /// One event of a watched job's log.
    Event {
        /// The event, with its dense sequence number.
        event: JobEvent<Sol>,
    },
    /// Answer to [`ClientRequest::Status`].
    Status {
        /// The snapshot.
        status: ServerStatus,
    },
    /// Answer to [`ClientRequest::Metrics`].
    Metrics {
        /// Exposition text plus structured per-job snapshots.
        report: MetricsReport,
    },
    /// The server acknowledged [`ClientRequest::Shutdown`].
    ShuttingDown,
    /// The submit was refused by admission control (HTTP 429's moral
    /// equivalent): no job id was assigned, nothing was queued or made
    /// durable. The connection stays usable; the client may retry later.
    Rejected {
        /// Why: `"quota"` (tenant token bucket empty), `"capacity"`
        /// (global in-flight bound reached) or `"draining"`.
        reason: String,
    },
    /// Answer to [`ClientRequest::Fleet`]: the gateway's per-shard view.
    Fleet {
        /// Per-shard health and counters.
        fleet: FleetStatus,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Answer to [`ClientRequest::Fleet`]: one row per shard plus the
/// gateway's own counters — what `ugd fleet` renders.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FleetStatus {
    /// One row per configured shard.
    pub shards: Vec<ShardSummary>,
    /// Jobs accepted by the gateway and not yet terminal.
    pub inflight: usize,
    /// Jobs waiting in the gateway's dispatch queue (not yet routed).
    pub dispatch_depth: usize,
    /// Queued jobs migrated off a deep shard onto an idle one, total.
    pub stolen_total: u64,
    /// Jobs replayed from a dead shard's ledger state onto a peer.
    pub failed_over_total: u64,
    /// Submissions refused by admission control, total.
    pub rejected_total: u64,
    /// Jobs known to the gateway per instance family label
    /// (`stp`/`misdp`/`maxcut`/`unknown`), terminal ones included —
    /// the per-family row of `ugd fleet`. Defaults empty when talking
    /// to an older gateway.
    #[serde(default)]
    pub families: std::collections::BTreeMap<String, u64>,
}

/// One shard's row in a [`FleetStatus`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ShardSummary {
    /// The shard's configured name.
    pub name: String,
    /// The shard's client address.
    pub addr: String,
    /// False once the liveness sweep declared the shard dead.
    pub healthy: bool,
    /// Jobs waiting in the shard's scheduler queue
    /// (`ugrs_server_queue_depth` from its exposition).
    pub queue_depth: u64,
    /// Pool workers currently leased (`ugrs_server_workers_busy`).
    pub workers_busy: u64,
    /// Connected pool workers (`ugrs_server_pool_workers`).
    pub pool_workers: u64,
    /// Jobs currently running (`ugrs_server_jobs_running`).
    pub jobs_running: u64,
    /// Milliseconds since the shard last answered a health poll.
    pub last_heard_ms: u64,
}

/// The live view of one job, as returned by [`ClientRequest::Metrics`]:
/// its lifecycle state plus the coordinator's freshest progress
/// snapshot (absent until the job first reports, and for queued jobs).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobProgress {
    /// The job id.
    pub job: u64,
    /// The job's label.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub state: JobState,
    /// Freshest coordinator progress, if the job ever reported.
    pub progress: Option<ProgressMsg>,
}

/// Reply payload of [`ClientRequest::Metrics`]: the full Prometheus
/// text exposition (server registry + process-wide registry + per-job
/// series) and structured per-job snapshots.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MetricsReport {
    /// Prometheus-style text exposition.
    pub text: String,
    /// Structured per-job progress snapshots.
    pub jobs: Vec<JobProgress>,
}

/// The job lifecycle: `Queued → Running →` one terminal state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JobState {
    /// Waiting for workers (or for its turn under `max_jobs`).
    Queued,
    /// Leased workers are solving it.
    Running,
    /// Search space exhausted with a solution: proven optimal.
    Solved,
    /// Search space exhausted without a solution.
    Infeasible,
    /// Stopped on the wall-clock or node limit.
    TimedOut,
    /// Cancelled by a client (queued or mid-run) or by shutdown.
    Cancelled,
    /// Every leased worker died before the job could finish.
    Failed,
}

impl JobState {
    /// True once the job can never change state again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One entry of a job's append-only event log. `seq` is dense from 0,
/// so a watcher can resume with `Watch { from_seq }` after a dropped
/// connection without missing or repeating events.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobEvent<Sol> {
    /// The job this event belongs to.
    pub job: u64,
    /// Dense per-job sequence number, from 0.
    pub seq: usize,
    /// What happened.
    pub kind: JobEventKind<Sol>,
}

/// What happened. Progress events (`Incumbent`, `Bound`) are deduped:
/// only strict improvements are logged.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum JobEventKind<Sol> {
    /// The job entered the queue.
    Queued,
    /// The job survived a server restart: its ledger record was found
    /// by the recovery pass and it is back in the queue. `run_index` is
    /// the run the next start will report — 1 when the job is requeued
    /// from scratch, `k + 1` when it resumes run `k`'s checkpoint with
    /// `nodes_so_far` cumulative B&B nodes already banked.
    Recovered {
        /// Run index of the upcoming run (Table 2's `1.k`).
        run_index: u32,
        /// Cumulative chain nodes carried into the resumed run.
        nodes_so_far: u64,
    },
    /// A gateway routed (or re-routed) the job to a shard: on initial
    /// dispatch, when its queued self was stolen onto an idler shard,
    /// and when it failed over off a dead shard. Never emitted by a
    /// plain server.
    Routed {
        /// The chosen shard's configured name.
        shard: String,
    },
    /// The job was leased `workers` pool workers and started running.
    Started {
        /// Number of leased workers.
        workers: usize,
    },
    /// An improving incumbent (internal-sense objective).
    Incumbent {
        /// The new best objective.
        obj: f64,
    },
    /// An improving global dual bound (internal sense).
    Bound {
        /// The new global dual bound.
        dual_bound: f64,
    },
    /// A leased worker died mid-job; its work was requeued.
    WorkerLost {
        /// The dead worker's rank within the job.
        rank: usize,
    },
    /// Terminal: the job reached `state`.
    Finished {
        /// The terminal lifecycle state.
        state: JobState,
        /// Best objective found (internal sense), if any.
        obj: Option<f64>,
        /// Proven global dual bound (internal sense).
        dual_bound: f64,
        /// The best solution itself, if any.
        solution: Option<Sol>,
        /// B&B nodes processed by *this* run.
        nodes: u64,
        /// Cumulative B&B nodes across the whole restart chain
        /// (equals `nodes` unless the job resumed a checkpoint).
        nodes_so_far: u64,
        /// Which run of the restart chain this was (1-based).
        run_index: u32,
        /// Primitive nodes left open when the run stopped (0 when the
        /// search space was exhausted).
        open_nodes: u64,
        /// Leased workers that died during the run.
        workers_lost: u64,
        /// Wall-clock seconds of this run.
        wall_time: f64,
        /// The final checkpoint of an unfinished run, serialized as the
        /// JSON that `ParallelOptions::restart_from` accepts — so a
        /// client can resubmit a timed-out job exactly where it stopped.
        final_checkpoint: Option<String>,
    },
}

/// A point-in-time snapshot for `ugd status`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ServerStatus {
    /// Configured pool size (the scheduler refills toward this).
    pub pool_target: usize,
    /// Every connected pool worker and its lease.
    pub workers: Vec<WorkerInfo>,
    /// Job ids still waiting, in submission order.
    pub queued: Vec<u64>,
    /// Every job the server knows, queued through terminal.
    pub jobs: Vec<JobSummary>,
}

/// One pool worker in a [`ServerStatus`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WorkerInfo {
    /// Permanent pool id.
    pub id: u64,
    /// OS pid, when the worker reported one.
    pub pid: Option<u32>,
    /// The job this worker is leased to, if any.
    pub job: Option<u64>,
    /// Its rank within that job.
    pub rank: Option<usize>,
    /// True between a job's end and the worker's `JobDone` ack.
    pub draining: bool,
}

/// One job's row in [`ServerStatus`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobSummary {
    /// The job id.
    pub job: u64,
    /// The submitted label.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Scheduling priority (higher first).
    pub priority: i32,
    /// Requested worker count.
    pub num_solvers: usize,
    /// Which run of the job's restart chain is current (or upcoming,
    /// for a recovered queued job): 1 unless the server crashed and
    /// resumed this job from a checkpoint — then `k` as in Table 2's
    /// run `1.k`.
    pub run_index: u32,
    /// Open primitive nodes from the job's freshest progress snapshot
    /// (`None` until the coordinator first reports).
    pub open_nodes: Option<u64>,
}

// ---------------------------------------------------------------------
// Server configuration and shared state
// ---------------------------------------------------------------------

/// Tuning of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker executable + fixed leading arguments. The server appends
    /// `--serve --connect <addr> --pool-tag <tag> --status-interval <s>
    /// --heartbeat-ms <ms> --handshake-ms <ms> --liveness-ms <ms>
    /// --reconnect-ms <ms>` per spawn. Leave empty to run with
    /// externally started workers only (no refill).
    pub worker_command: Vec<String>,
    /// Standing pool size the scheduler maintains.
    pub pool_size: usize,
    /// Upper bound on simultaneously running jobs.
    pub max_concurrent_jobs: usize,
    /// Client listener address (`"127.0.0.1:0"` = OS-picked port).
    pub client_addr: String,
    /// Worker listener address.
    pub worker_addr: String,
    /// Transport tuning shared with the per-call distributed runner.
    pub comm: ProcessCommConfig,
    /// `status_interval` handed to each job's coordinator options.
    pub status_interval: f64,
    /// How long a worker may drain (job end → `JobDone`) or a running
    /// job may outlive shutdown before being killed.
    pub drain_timeout: Duration,
    /// When set, each job writes a JSONL run journal to
    /// `<journal_dir>/job-<id>-<name>.jsonl` (created as needed).
    pub journal_dir: Option<std::path::PathBuf>,
    /// When set, the server is **crash-safe**: every submission is
    /// write-ahead-logged to a [`JobLedger`] under this directory
    /// before it is acknowledged, running jobs checkpoint there every
    /// [`Self::checkpoint_interval`] seconds, and a restart against the
    /// same directory requeues pending jobs and resumes interrupted
    /// ones from their latest checkpoint.
    pub state_dir: Option<std::path::PathBuf>,
    /// Seconds between a running job's periodic checkpoints (only with
    /// [`Self::state_dir`]; also the bound on how much solving a crash
    /// can lose). `<= 0` disables periodic saves — a crash then
    /// requeues running jobs from scratch.
    pub checkpoint_interval: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            worker_command: Vec::new(),
            pool_size: 4,
            max_concurrent_jobs: 2,
            client_addr: "127.0.0.1:0".into(),
            worker_addr: "127.0.0.1:0".into(),
            comm: ProcessCommConfig::default(),
            status_interval: 0.05,
            drain_timeout: Duration::from_secs(10),
            journal_dir: None,
            state_dir: None,
            checkpoint_interval: 1.0,
        }
    }
}

type SharedWriter = Arc<Mutex<Option<TcpStream>>>;

struct WorkerEntry {
    writer: SharedWriter,
    /// The `Child` when the server spawned this worker itself.
    child: Option<Child>,
    pid: Option<u32>,
    /// `(job, rank)` while leased.
    lease: Option<(u64, usize)>,
    /// Set when the leased job finished; cleared by `JobDone`.
    draining_since: Option<Instant>,
    /// Last frame of any kind (heartbeats included).
    last_heard: Instant,
}

struct PendingSpawn {
    child: Child,
    since: Instant,
}

struct JobRecord<Inst, Sub, Sol> {
    spec: JobSpec<Inst, Sub>,
    state: JobState,
    cancel: Arc<AtomicBool>,
    /// Upward channel into the running job's coordinator.
    inbox: Option<Sender<Message<Sub, Sol>>>,
    /// Checkpoint JSON a recovered job resumes from (taken at start).
    restart_from: Option<String>,
    /// Current (or, while queued, upcoming) run of the restart chain.
    run_index: u32,
}

struct ServerState<Inst, Sub, Sol> {
    workers: HashMap<u64, WorkerEntry>,
    /// Spawned but not yet handshaken, keyed by spawn tag.
    pending: HashMap<u64, PendingSpawn>,
    next_worker_tag: u64,
    /// Waiting job ids in submission order.
    queue: Vec<u64>,
    jobs: BTreeMap<u64, JobRecord<Inst, Sub, Sol>>,
    next_job: u64,
    running: usize,
    shutdown: bool,
}

/// One job's append-only event log plus progress-dedup watermarks.
struct JobLog<Sol> {
    events: Vec<JobEvent<Sol>>,
    done: bool,
    best_obj: Option<f64>,
    best_bound: f64,
}

impl<Sol> Default for JobLog<Sol> {
    fn default() -> Self {
        JobLog { events: Vec::new(), done: false, best_obj: None, best_bound: f64::NEG_INFINITY }
    }
}

struct SharedState<Inst, Sub, Sol> {
    state: Mutex<ServerState<Inst, Sub, Sol>>,
    /// Wakes the scheduler (submission, worker change, job end).
    sched: Condvar,
    events: Mutex<HashMap<u64, JobLog<Sol>>>,
    /// Wakes watchers streaming a job's events.
    events_cv: Condvar,
    config: ServerConfig,
    /// Resolved worker-listener address workers are spawned against.
    worker_addr: String,
    shutdown: AtomicBool,
    /// Set by [`Server::drain`]: this shutdown must *preserve* the
    /// ledger records of jobs it stops (they resume on the next server
    /// against the same state dir) instead of retiring them.
    draining: AtomicBool,
    /// Freshest per-job [`ProgressMsg`] (fed by each coordinator's
    /// progress sink). Its own lock, never taken while `state` is held.
    progress: Mutex<HashMap<u64, ProgressMsg>>,
    /// Server-scoped metrics (this server's pool/job/heartbeat series;
    /// per-instance so concurrent servers in one process stay isolated).
    /// Rendered together with [`telemetry::global`] on `Metrics`.
    metrics: MetricsRegistry,
    /// The durable job ledger (with `config.state_dir`): submissions
    /// are WAL'd here before being acknowledged, terminal jobs retired.
    ledger: Option<JobLedger>,
}

/// Everything a job thread needs, collected under the state lock and
/// handed out of it (threads are spawned lock-free in phase B).
struct StartedJob<Inst, Sub, Sol> {
    jid: u64,
    spec: JobSpec<Inst, Sub>,
    cancel: Arc<AtomicBool>,
    writers: Vec<SharedWriter>,
    inbox: Receiver<Message<Sub, Sol>>,
    /// Checkpoint JSON to resume from (recovered jobs only).
    restart_from: Option<String>,
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

fn emit<Inst, Sub, Sol: Clone>(
    shared: &SharedState<Inst, Sub, Sol>,
    job: u64,
    kind: JobEventKind<Sol>,
) {
    let mut logs = shared.events.lock().unwrap();
    let log = logs.entry(job).or_default();
    if log.done {
        return;
    }
    if matches!(kind, JobEventKind::Finished { .. }) {
        log.done = true;
    }
    let seq = log.events.len();
    log.events.push(JobEvent { job, seq, kind });
    shared.events_cv.notify_all();
}

/// Turns upward coordination traffic into deduped progress events:
/// improving incumbents and finite improving dual bounds.
fn emit_progress<Inst, Sub, Sol: Clone>(
    shared: &SharedState<Inst, Sub, Sol>,
    job: u64,
    msg: &Message<Sub, Sol>,
) {
    let (is_obj, value) = match msg {
        Message::SolutionFound { obj, .. } => (true, *obj),
        Message::Status { dual_bound, .. } if dual_bound.is_finite() => (false, *dual_bound),
        _ => return,
    };
    let mut logs = shared.events.lock().unwrap();
    let log = logs.entry(job).or_default();
    if log.done {
        return;
    }
    let kind = if is_obj {
        if !log.best_obj.is_none_or(|cur| value < cur - crate::OBJ_EPS) {
            return;
        }
        log.best_obj = Some(value);
        JobEventKind::Incumbent { obj: value }
    } else {
        if value <= log.best_bound + crate::OBJ_EPS {
            return;
        }
        log.best_bound = value;
        JobEventKind::Bound { dual_bound: value }
    };
    let seq = log.events.len();
    log.events.push(JobEvent { job, seq, kind });
    shared.events_cv.notify_all();
}

// ---------------------------------------------------------------------
// The job-side communicator: LcComm's third back-end
// ---------------------------------------------------------------------

/// The coordinator endpoint of one *job*: sends to its leased pool
/// workers (wrapped as [`PoolDown::Ug`] frames), receives from the
/// inbox the server's pool readers forward into. `WorkerDied` for a
/// lost lease is injected by the server, mirroring what the process
/// transport synthesizes.
pub struct JobComm<Sub, Sol> {
    job: u64,
    writers: Vec<SharedWriter>,
    inbox: Receiver<Message<Sub, Sol>>,
}

impl<Sub, Sol> JobComm<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// Number of leased workers (= the job's solver ranks).
    pub fn num_workers(&self) -> usize {
        self.writers.len()
    }

    /// Sends to the worker leased as `rank`; false when the rank is out
    /// of range or its connection is gone (the writer is retired).
    pub fn send_to(&self, rank: usize, msg: Message<Sub, Sol>) -> bool {
        let Some(slot) = self.writers.get(rank) else { return false };
        let mut guard = slot.lock().unwrap();
        let Some(stream) = guard.as_mut() else { return false };
        match wire::write_msg(stream, &PoolDownUg::Ug { job: self.job, msg }) {
            Ok(()) => true,
            Err(_) => {
                *guard = None;
                false
            }
        }
    }

    /// Receives the next worker message, waiting at most `d`.
    pub fn recv_timeout(&self, d: Duration) -> Option<Message<Sub, Sol>> {
        match self.inbox.recv_timeout(d) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

/// Rewrites the rank a worker reported (always 0 about itself) to the
/// rank its lease assigns within the job.
fn set_rank<Sub, Sol>(msg: &mut Message<Sub, Sol>, rank: usize) {
    match msg {
        Message::SolutionFound { rank: r, .. }
        | Message::Status { rank: r, .. }
        | Message::ExportedNode { rank: r, .. }
        | Message::Completed { rank: r, .. }
        | Message::WorkerDied { rank: r } => *r = rank,
        _ => {}
    }
}

/// Classifies a finished run into the job lifecycle's terminal states.
fn classify<Sub, Sol>(
    res: &ParallelResult<Sub, Sol>,
    cancelled: bool,
    num_workers: usize,
) -> JobState {
    if res.solved {
        if res.solution.is_some() {
            JobState::Solved
        } else {
            JobState::Infeasible
        }
    } else if cancelled {
        JobState::Cancelled
    } else if res.stats.workers_died >= num_workers as u64 {
        JobState::Failed
    } else {
        // The coordinator only stops unsolved on attrition (above) or on
        // a limit — wall-clock or node count both report TimedOut.
        JobState::TimedOut
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// A running job service: worker pool + scheduler + client listener.
pub struct Server<Inst: WireType, Sub: WireType, Sol: WireType> {
    shared: Arc<SharedState<Inst, Sub, Sol>>,
    client_addr: SocketAddr,
    worker_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// `(total, resumed-from-checkpoint)` jobs the startup recovery
    /// pass brought back — for the operator's startup banner.
    recovered: (usize, usize),
}

impl<Inst: WireType, Sub: WireType, Sol: WireType> Server<Inst, Sub, Sol> {
    /// Binds both listeners and starts the scheduler; returns once the
    /// server is accepting (workers fill in asynchronously).
    ///
    /// With [`ServerConfig::state_dir`] set, this first runs the
    /// **recovery pass**: the [`JobLedger`] under that directory is
    /// read, every job it still owes an answer for re-enters the queue
    /// in its original order — pending jobs as submitted, interrupted
    /// running jobs resuming from their latest checkpoint with the
    /// chain's cumulative statistics — and only then do the listeners
    /// open. A failure to open the ledger fails the start (serving
    /// without the durability the caller asked for would be worse).
    pub fn start(config: ServerConfig) -> io::Result<Self> {
        config.comm.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut ledger = None;
        let mut recovered = Vec::new();
        let mut next_job = 0u64;
        if let Some(dir) = &config.state_dir {
            let l = JobLedger::open(dir)?;
            let rec = l.recover::<Inst, Sub>()?;
            for path in &rec.skipped {
                eprintln!(
                    "ugd-server: skipping unreadable ledger record {} (torn write?)",
                    path.display()
                );
            }
            next_job = rec.next_job;
            recovered = rec.jobs;
            ledger = Some(l);
        }
        let client_listener = TcpListener::bind(&config.client_addr)?;
        let worker_listener = TcpListener::bind(&config.worker_addr)?;
        let client_addr = client_listener.local_addr()?;
        let worker_addr = worker_listener.local_addr()?;
        let mut jobs = BTreeMap::new();
        let mut queue = Vec::new();
        for r in &recovered {
            queue.push(r.job);
            jobs.insert(
                r.job,
                JobRecord {
                    spec: r.spec.clone(),
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    inbox: None,
                    restart_from: r.checkpoint.clone(),
                    run_index: r.run_index,
                },
            );
        }
        let shared = Arc::new(SharedState {
            state: Mutex::new(ServerState {
                workers: HashMap::new(),
                pending: HashMap::new(),
                next_worker_tag: 0,
                queue,
                jobs,
                next_job,
                running: 0,
                shutdown: false,
            }),
            sched: Condvar::new(),
            events: Mutex::new(HashMap::new()),
            events_cv: Condvar::new(),
            config,
            worker_addr: worker_addr.to_string(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            progress: Mutex::new(HashMap::new()),
            metrics: MetricsRegistry::new(),
            ledger,
        });
        // Pre-register the lazily-observed families so a Metrics
        // request right after startup already shows the full schema.
        for family in ["stp", "misdp", "maxcut"] {
            shared.metrics.counter_with(
                "ugrs_server_jobs_submitted_total",
                &[("family", family)],
                "Jobs accepted via Submit, by instance family",
            );
        }
        shared
            .metrics
            .counter("ugrs_server_workers_lost_total", "Pool workers removed dead or stuck");
        for mode in ["requeued", "resumed"] {
            shared.metrics.counter_with(
                "ugrs_server_jobs_recovered_total",
                &[("mode", mode)],
                "Jobs brought back by the startup recovery pass, by mode",
            );
        }
        shared.metrics.histogram_with(
            "ugrs_server_heartbeat_gap_seconds",
            &[],
            "Gap between consecutive frames of a pool worker",
            &[0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0],
        );
        for r in &recovered {
            let mode = if r.checkpoint.is_some() { "resumed" } else { "requeued" };
            shared
                .metrics
                .counter_with(
                    "ugrs_server_jobs_recovered_total",
                    &[("mode", mode)],
                    "Jobs brought back by the startup recovery pass, by mode",
                )
                .inc();
            emit(&shared, r.job, JobEventKind::Queued);
            emit(
                &shared,
                r.job,
                JobEventKind::Recovered { run_index: r.run_index, nodes_so_far: r.nodes_so_far },
            );
        }
        let mut threads = Vec::new();
        let sh = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ugd-scheduler".into())
                .spawn(move || scheduler_loop(sh))?,
        );
        let sh = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ugd-worker-accept".into())
                .spawn(move || worker_accept_loop(sh, worker_listener))?,
        );
        let sh = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ugd-client-accept".into())
                .spawn(move || client_accept_loop(sh, client_listener))?,
        );
        let resumed = recovered.iter().filter(|r| r.checkpoint.is_some()).count();
        Ok(Server {
            shared,
            client_addr,
            worker_addr,
            threads,
            recovered: (recovered.len(), resumed),
        })
    }

    /// How many jobs the startup recovery pass brought back:
    /// `(total, resumed_from_checkpoint)`. `(0, 0)` without a state
    /// dir or on a clean ledger.
    pub fn recovered_jobs(&self) -> (usize, usize) {
        self.recovered
    }

    /// Where clients connect.
    pub fn client_addr(&self) -> SocketAddr {
        self.client_addr
    }

    /// Where pool workers connect.
    pub fn worker_addr(&self) -> SocketAddr {
        self.worker_addr
    }

    /// Begins shutdown: queued jobs are cancelled, running jobs get
    /// their cancel flag, the pool is torn down once they drain.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Begins a **graceful drain** (the SIGTERM path of a rolling
    /// restart): new submits are refused, running jobs are stopped
    /// through their cancel flags — each coordinator writes a final
    /// checkpoint on the way out — and, unlike [`Self::shutdown`], the
    /// ledger records of every job that did not finish are *kept*, so
    /// the next server started against the same state dir resumes them
    /// as run `1.k` of their restart chains. Without a state dir this
    /// is identical to `shutdown`.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        initiate_shutdown(&self.shared);
    }

    /// True once a shutdown (client-requested or via [`Self::drain`])
    /// has begun — lets a binary poll instead of blocking in `join`.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Joins the service threads (call after [`Self::shutdown`]).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// [`Server::shutdown`] followed by joining every thread.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }

    /// [`Server::drain`] followed by joining every thread.
    pub fn drain_and_join(self) {
        self.drain();
        self.join();
    }
}

fn initiate_shutdown<Inst, Sub, Sol>(shared: &SharedState<Inst, Sub, Sol>) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.state.lock().unwrap().shutdown = true;
    shared.sched.notify_all();
    shared.events_cv.notify_all();
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

fn spawn_pool_worker(config: &ServerConfig, worker_addr: &str, tag: u64) -> io::Result<Child> {
    let (program, fixed_args) = config
        .worker_command
        .split_first()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty worker_command"))?;
    let mut cmd = std::process::Command::new(program);
    cmd.args(fixed_args)
        .arg("--serve")
        .arg("--connect")
        .arg(worker_addr)
        .arg("--pool-tag")
        .arg(tag.to_string())
        .arg("--status-interval")
        .arg(config.status_interval.to_string())
        .arg("--heartbeat-ms")
        .arg(config.comm.heartbeat_interval.as_millis().to_string())
        .arg("--handshake-ms")
        .arg(config.comm.handshake_timeout.as_millis().to_string())
        .arg("--liveness-ms")
        .arg(config.comm.liveness_timeout.as_millis().to_string())
        .arg("--reconnect-ms")
        .arg(config.comm.reconnect_deadline.as_millis().to_string());
    if let Some(plan) = &config.comm.chaos {
        // Each worker gets a per-worker variant of the plan (seed +
        // worker id): still deterministic given the spawn order, but
        // de-correlated — with one shared seed every worker's schedule
        // would tear all of a job's leases on the same frame.
        cmd.arg("--chaos-seed")
            .arg(plan.seed.wrapping_add(tag).to_string())
            .arg("--chaos-profile")
            .arg(serde_json::to_string(&plan.profile).expect("profile serializes"));
    }
    cmd.stdin(std::process::Stdio::null()).stdout(std::process::Stdio::null()).spawn()
}

/// The scheduler: pool refill, liveness, and job starts. Each pass has
/// three phases — decide under the state lock (A), act lock-free (B:
/// kill lost workers, spawn job threads, emit events), then block on
/// the condvar (C). Nothing slow ever runs under the lock.
fn scheduler_loop<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<SharedState<Inst, Sub, Sol>>,
) {
    loop {
        let mut lost: Vec<u64> = Vec::new();
        let mut starts: Vec<StartedJob<Inst, Sub, Sol>> = Vec::new();
        {
            let mut st = shared.state.lock().unwrap();
            if st.shutdown {
                break;
            }
            // Prune pending spawns that died or never handshook.
            let handshake_grace = shared.config.comm.handshake_timeout * 2;
            st.pending.retain(|_, p| {
                if matches!(p.child.try_wait(), Ok(Some(_))) {
                    return false;
                }
                if p.since.elapsed() > handshake_grace {
                    let _ = p.child.kill();
                    let _ = p.child.wait();
                    return false;
                }
                true
            });
            // Refill toward the target pool size.
            if !shared.config.worker_command.is_empty() {
                while st.workers.len() + st.pending.len() < shared.config.pool_size {
                    let tag = st.next_worker_tag;
                    st.next_worker_tag += 1;
                    match spawn_pool_worker(&shared.config, &shared.worker_addr, tag) {
                        Ok(child) => {
                            st.pending.insert(tag, PendingSpawn { child, since: Instant::now() });
                        }
                        Err(_) => break,
                    }
                }
            }
            // Liveness sweep + expired drains.
            for (id, w) in st.workers.iter() {
                if w.last_heard.elapsed() > shared.config.comm.liveness_timeout {
                    lost.push(*id);
                } else if let Some(t) = w.draining_since {
                    if t.elapsed() > shared.config.drain_timeout {
                        lost.push(*id);
                    }
                }
            }
            // Start queued jobs while capacity and free workers allow.
            while st.running < shared.config.max_concurrent_jobs {
                let mut free: Vec<u64> = st
                    .workers
                    .iter()
                    .filter(|(id, w)| {
                        w.lease.is_none() && w.draining_since.is_none() && !lost.contains(id)
                    })
                    .map(|(id, _)| *id)
                    .collect();
                free.sort_unstable();
                // Best-priority queued job that fits the free workers
                // (smaller jobs may overtake one that does not fit yet).
                let mut pick: Option<(usize, u64)> = None;
                for (i, &jid) in st.queue.iter().enumerate() {
                    let spec = &st.jobs[&jid].spec;
                    let want = spec.num_solvers.clamp(1, shared.config.pool_size.max(1));
                    if want > free.len() {
                        continue;
                    }
                    let better = match pick {
                        None => true,
                        Some((_, best)) => {
                            let b = &st.jobs[&best].spec;
                            (spec.priority, std::cmp::Reverse(jid))
                                > (b.priority, std::cmp::Reverse(best))
                        }
                    };
                    if better {
                        pick = Some((i, jid));
                    }
                }
                let Some((qi, jid)) = pick else { break };
                let want = st.jobs[&jid].spec.num_solvers.clamp(1, shared.config.pool_size.max(1));
                st.queue.remove(qi);
                let chosen: Vec<u64> = free[..want].to_vec();
                let mut writers = Vec::with_capacity(want);
                for (rank, wid) in chosen.iter().enumerate() {
                    let w = st.workers.get_mut(wid).expect("chosen from live workers");
                    w.lease = Some((jid, rank));
                    writers.push(w.writer.clone());
                }
                let (tx, rx) = channel();
                st.running += 1;
                let job = st.jobs.get_mut(&jid).expect("queued job has a record");
                job.state = JobState::Running;
                job.inbox = Some(tx);
                starts.push(StartedJob {
                    jid,
                    spec: job.spec.clone(),
                    cancel: job.cancel.clone(),
                    writers,
                    inbox: rx,
                    // Consumed on first start: if this run is later lost
                    // to a *worker*-side failure the coordinator already
                    // requeues in memory, and a *server* crash re-reads
                    // the freshest checkpoint from disk anyway.
                    restart_from: job.restart_from.take(),
                });
            }
        }
        for id in lost {
            worker_lost(&shared, id);
        }
        for s in starts {
            emit(&shared, s.jid, JobEventKind::Started { workers: s.writers.len() });
            let sh = shared.clone();
            let name = format!("ugd-job-{}", s.jid);
            std::thread::Builder::new()
                .name(name)
                .spawn(move || run_job(sh, s))
                .expect("spawn job thread");
        }
        let st = shared.state.lock().unwrap();
        if st.shutdown {
            break;
        }
        let _ = shared.sched.wait_timeout(st, Duration::from_millis(100)).unwrap();
    }
    shutdown_cleanup(&shared);
}

/// Removes a dead/stuck worker: retire its connection, kill its
/// process, tell its job's coordinator (requeue path), wake the
/// scheduler (refill path). Idempotent — the pool reader and the
/// liveness sweep may both report the same worker.
fn worker_lost<Inst, Sub, Sol: Clone>(shared: &SharedState<Inst, Sub, Sol>, id: u64) {
    let (child, notify) = {
        let mut st = shared.state.lock().unwrap();
        let Some(mut w) = st.workers.remove(&id) else { return };
        if let Ok(mut g) = w.writer.lock() {
            if let Some(s) = g.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        let mut notify = None;
        if let Some((jid, rank)) = w.lease {
            if let Some(job) = st.jobs.get(&jid) {
                if job.state == JobState::Running {
                    if let Some(tx) = &job.inbox {
                        notify = Some((tx.clone(), jid, rank));
                    }
                }
            }
        }
        (w.child.take(), notify)
    };
    if let Some(mut c) = child {
        let _ = c.kill();
        let _ = c.wait();
    }
    shared
        .metrics
        .counter("ugrs_server_workers_lost_total", "Pool workers removed dead or stuck")
        .inc();
    if let Some((tx, jid, rank)) = notify {
        let _ = tx.send(Message::WorkerDied { rank });
        emit(shared, jid, JobEventKind::WorkerLost { rank });
    }
    shared.sched.notify_all();
}

/// Runs one job to completion on its leased workers (the job thread).
fn run_job<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<SharedState<Inst, Sub, Sol>>,
    start: StartedJob<Inst, Sub, Sol>,
) {
    let StartedJob { jid, spec, cancel, writers, inbox, restart_from } = start;
    let n = writers.len();
    // One encode, n identical writes: the worker-pool amortization.
    let begin = wire::encode(&PoolDown::<Inst, Sub, Sol>::Begin {
        job: jid,
        instance: spec.instance.clone(),
    });
    for w in &writers {
        let mut guard = w.lock().unwrap();
        if let Some(stream) = guard.as_mut() {
            if stream.write_all(&begin).and_then(|_| stream.flush()).is_err() {
                *guard = None;
            }
        }
    }
    // Telemetry wiring: an optional per-job journal plus a progress
    // sink feeding the server's live per-job snapshot map.
    let journal = shared.config.journal_dir.as_ref().and_then(|dir| {
        let path = dir.join(format!("job-{jid}-{}.jsonl", telemetry::sanitize_name(&spec.name)));
        telemetry::Journal::create(path).ok().map(Arc::new)
    });
    // Head record: pin the job's provenance (family + source-file
    // checksum) to its event stream before any run event.
    if let Some(j) = &journal {
        j.log(telemetry::TelemetryEvent::JobMeta {
            family: spec.family.clone(),
            checksum: spec.checksum.clone(),
        });
        j.flush();
    }
    let progress = {
        let sh = shared.clone();
        ProgressSink::new(move |p: &ProgressMsg| {
            sh.progress.lock().unwrap().insert(jid, p.clone());
        })
    };
    // Durability wiring: with a state dir, this job checkpoints its
    // primitive nodes periodically (so a server crash resumes it), and
    // a recovered job restarts from the checkpoint the dead server
    // left behind.
    let checkpoint_path = shared.ledger.as_ref().map(|l| l.checkpoint_path(jid));
    let options = ParallelOptions {
        num_solvers: n,
        time_limit: spec.time_limit,
        node_limit: spec.node_limit,
        cancel: Some(cancel.clone()),
        status_interval: shared.config.status_interval,
        telemetry: TelemetrySink { journal, progress: Some(progress) },
        checkpoint_path,
        checkpoint_interval: shared.config.checkpoint_interval,
        restart_from,
        ..ParallelOptions::default()
    };
    let comm = LcComm::Job(JobComm { job: jid, writers, inbox });
    let mut coordinator = LoadCoordinator::new(comm, options, spec.root.clone());
    let res = coordinator.run();
    let state = classify(&res, cancel.load(Ordering::SeqCst), n);
    {
        let mut st = shared.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&jid) {
            job.state = state;
            job.inbox = None;
            job.run_index = res.stats.run_index;
        }
        // Leases release on JobDone; stamp the drain clock so a worker
        // that never acks is eventually recycled.
        for w in st.workers.values_mut() {
            if matches!(w.lease, Some((j, _)) if j == jid) {
                w.draining_since = Some(Instant::now());
            }
        }
        st.running -= 1;
    }
    // Retire the ledger record *before* announcing the terminal state:
    // a crash in between re-runs a finished job (at-least-once), while
    // the opposite order could lose an acknowledged job (at-most-once).
    // Exception: a job stopped by a graceful drain keeps its record and
    // final checkpoint — the next server on this state dir owes it a
    // resumed run `1.k`, exactly like a crash would, minus the losses.
    let drain_stopped = state == JobState::Cancelled && shared.draining.load(Ordering::SeqCst);
    if !drain_stopped {
        retire_ledger_record(&shared, jid);
    }
    record_job_finished(&shared, jid, state);
    emit(
        &shared,
        jid,
        JobEventKind::Finished {
            state,
            obj: res.solution.as_ref().map(|(_, o)| *o),
            dual_bound: res.dual_bound,
            solution: res.solution.map(|(s, _)| s),
            nodes: res.stats.nodes_total,
            nodes_so_far: res.stats.nodes_so_far,
            run_index: res.stats.run_index,
            open_nodes: res.stats.open_nodes,
            workers_lost: res.stats.workers_died,
            wall_time: res.stats.wall_time,
            final_checkpoint: res
                .final_checkpoint
                .as_ref()
                .and_then(|cp| serde_json::to_string(cp).ok()),
        },
    );
    shared.sched.notify_all();
}

/// Removes a terminal job's WAL record and checkpoint from the ledger
/// so recovery will not resurrect it. A deletion failure is reported
/// but not fatal: the worst outcome is a re-run after a restart.
fn retire_ledger_record<Inst, Sub, Sol>(shared: &SharedState<Inst, Sub, Sol>, jid: u64) {
    if let Some(ledger) = &shared.ledger {
        if let Err(e) = ledger.record_finished(jid) {
            eprintln!("ugd-server: cannot retire ledger record of job {jid}: {e}");
        }
    }
}

/// The `Finished` event of a job that never ran (cancelled while
/// queued, or swept up by shutdown): no bounds, no nodes, no solution.
fn empty_finished<Sol>(state: JobState, run_index: u32) -> JobEventKind<Sol> {
    JobEventKind::Finished {
        state,
        obj: None,
        dual_bound: f64::NEG_INFINITY,
        solution: None,
        nodes: 0,
        nodes_so_far: 0,
        run_index,
        open_nodes: 0,
        workers_lost: 0,
        wall_time: 0.0,
        final_checkpoint: None,
    }
}

fn state_label(state: JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Running => "running",
        JobState::Solved => "solved",
        JobState::Infeasible => "infeasible",
        JobState::TimedOut => "timed_out",
        JobState::Cancelled => "cancelled",
        JobState::Failed => "failed",
    }
}

fn record_job_finished<Inst, Sub, Sol>(
    shared: &SharedState<Inst, Sub, Sol>,
    job: u64,
    state: JobState,
) {
    // Family comes from the job's own record, so every terminal path
    // (finish, cancel, reclaim, shutdown) labels consistently.
    let family = {
        let st = shared.state.lock().unwrap();
        st.jobs.get(&job).and_then(|r| r.spec.family.clone()).unwrap_or_else(|| "unknown".into())
    };
    shared
        .metrics
        .counter_with(
            "ugrs_server_jobs_finished_total",
            &[("state", state_label(state)), ("family", &family)],
            "Jobs that reached a terminal state, by state and instance family",
        )
        .inc();
}

fn shutdown_cleanup<Inst, Sub, Sol: Clone>(shared: &SharedState<Inst, Sub, Sol>) {
    let queued: Vec<(u64, u32)> = {
        let mut st = shared.state.lock().unwrap();
        let queued = std::mem::take(&mut st.queue);
        let queued = queued
            .into_iter()
            .map(|j| {
                let run_index = match st.jobs.get_mut(&j) {
                    Some(r) => {
                        r.state = JobState::Cancelled;
                        r.run_index
                    }
                    None => 1,
                };
                (j, run_index)
            })
            .collect();
        for r in st.jobs.values() {
            if r.state == JobState::Running {
                r.cancel.store(true, Ordering::SeqCst);
            }
        }
        queued
    };
    // A drain keeps the queued jobs' WAL records: they never ran, so
    // the next server simply requeues them as submitted.
    let draining = shared.draining.load(Ordering::SeqCst);
    for (j, run_index) in queued {
        if !draining {
            retire_ledger_record(shared, j);
        }
        record_job_finished(shared, j, JobState::Cancelled);
        emit(shared, j, empty_finished(JobState::Cancelled, run_index));
    }
    // Let running jobs drain through their cancel flags, bounded.
    let deadline = Instant::now() + shared.config.drain_timeout;
    let mut st = shared.state.lock().unwrap();
    while st.running > 0 && Instant::now() < deadline {
        let (guard, _) = shared.sched.wait_timeout(st, Duration::from_millis(50)).unwrap();
        st = guard;
    }
    let mut children: Vec<Child> = Vec::new();
    for (_, mut w) in st.workers.drain() {
        if let Ok(mut g) = w.writer.lock() {
            if let Some(s) = g.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(c) = w.child.take() {
            children.push(c);
        }
    }
    for (_, p) in st.pending.drain() {
        children.push(p.child);
    }
    drop(st);
    for mut c in children {
        if !matches!(c.try_wait(), Ok(Some(_))) {
            let _ = c.kill();
        }
        let _ = c.wait();
    }
}

// ---------------------------------------------------------------------
// Worker pool: accept, handshake, per-worker readers
// ---------------------------------------------------------------------

fn worker_accept_loop<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<SharedState<Inst, Sub, Sol>>,
    listener: TcpListener,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = admit_worker(&shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn admit_worker<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: &Arc<SharedState<Inst, Sub, Sol>>,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let hello: PoolHello = wire::read_msg(&mut reader, &mut dec)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "worker closed before hello")
    })?;
    if hello.protocol != POOL_PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("pool protocol {} != {}", hello.protocol, POOL_PROTOCOL_VERSION),
        ));
    }
    let (id, mut child) = {
        let mut st = shared.state.lock().unwrap();
        match hello.tag {
            Some(t) if st.pending.contains_key(&t) => {
                (t, Some(st.pending.remove(&t).expect("checked").child))
            }
            _ => {
                let id = st.next_worker_tag;
                st.next_worker_tag += 1;
                (id, None)
            }
        }
    };
    let finish = (|| -> io::Result<TcpStream> {
        wire::write_msg(&mut (&stream), &PoolWelcome { worker: id })?;
        stream.set_read_timeout(None)?;
        stream.try_clone()
    })();
    let writer_stream = match finish {
        Ok(s) => s,
        Err(e) => {
            // An adopted child whose handshake failed must not leak.
            if let Some(c) = child.as_mut() {
                let _ = c.kill();
                let _ = c.wait();
            }
            return Err(e);
        }
    };
    let pid = hello.pid.or_else(|| child.as_ref().map(|c| c.id()));
    {
        let mut st = shared.state.lock().unwrap();
        st.workers.insert(
            id,
            WorkerEntry {
                writer: Arc::new(Mutex::new(Some(writer_stream))),
                child,
                pid,
                lease: None,
                draining_since: None,
                last_heard: Instant::now(),
            },
        );
    }
    spawn_pool_reader(shared.clone(), id, reader, dec);
    shared.sched.notify_all();
    Ok(())
}

fn spawn_pool_reader<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<SharedState<Inst, Sub, Sol>>,
    id: u64,
    mut stream: TcpStream,
    mut dec: FrameDecoder,
) {
    std::thread::Builder::new()
        .name(format!("pool-reader-{id}"))
        .spawn(move || loop {
            match wire::read_msg::<PoolUp<Sub, Sol>, _>(&mut stream, &mut dec) {
                Ok(Some(up)) => handle_pool_up(&shared, id, up),
                Ok(None) | Err(_) => {
                    worker_lost(&shared, id);
                    return;
                }
            }
        })
        .expect("spawn pool reader thread");
}

fn handle_pool_up<Inst, Sub, Sol: Clone>(
    shared: &SharedState<Inst, Sub, Sol>,
    id: u64,
    up: PoolUp<Sub, Sol>,
) {
    match up {
        PoolUp::Ping { .. } => {
            let gap = {
                let mut st = shared.state.lock().unwrap();
                let Some(w) = st.workers.get_mut(&id) else { return };
                let gap = w.last_heard.elapsed();
                w.last_heard = Instant::now();
                gap
            };
            // Observed gap between consecutive frames: the live
            // heartbeat-latency distribution (nominal = the configured
            // heartbeat interval; the tail shows scheduling delay).
            shared
                .metrics
                .histogram_with(
                    "ugrs_server_heartbeat_gap_seconds",
                    &[],
                    "Gap between consecutive frames of a pool worker",
                    &[0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0],
                )
                .observe(gap.as_secs_f64());
        }
        PoolUp::JobDone { .. } => {
            {
                let mut st = shared.state.lock().unwrap();
                if let Some(w) = st.workers.get_mut(&id) {
                    w.last_heard = Instant::now();
                    w.lease = None;
                    w.draining_since = None;
                }
            }
            shared.sched.notify_all();
        }
        PoolUp::Ug { job, mut msg, .. } => {
            let tx = {
                let mut st = shared.state.lock().unwrap();
                let Some(w) = st.workers.get_mut(&id) else { return };
                w.last_heard = Instant::now();
                let Some((jid, rank)) = w.lease else { return };
                if jid != job {
                    return; // stale frame of a previous job
                }
                set_rank(&mut msg, rank);
                st.jobs.get(&jid).and_then(|j| j.inbox.clone())
            };
            if let Some(tx) = tx {
                emit_progress(shared, job, &msg);
                let _ = tx.send(msg);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------

fn client_accept_loop<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<SharedState<Inst, Sub, Sol>>,
    listener: TcpListener,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let sh = shared.clone();
                let _ = std::thread::Builder::new().name("ugd-client".into()).spawn(move || {
                    let _ = serve_client(&sh, stream);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_client<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: &Arc<SharedState<Inst, Sub, Sol>>,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut dec = FrameDecoder::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req = match wire::read_msg::<ClientRequest<Inst, Sub>, _>(&mut reader, &mut dec) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // client hung up
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) => return Err(e),
        };
        match req {
            ClientRequest::Submit { spec } => {
                if shared.draining.load(Ordering::SeqCst) {
                    // A draining server refuses politely: the client
                    // should resubmit to a peer (or wait for the
                    // replacement), not treat this as a hard error.
                    wire::write_msg(
                        &mut writer,
                        &ServerReply::<Sol>::Rejected { reason: "draining".into() },
                    )?;
                } else if shared.shutdown.load(Ordering::SeqCst) {
                    wire::write_msg(
                        &mut writer,
                        &ServerReply::<Sol>::Error { message: "server shutting down".into() },
                    )?;
                } else {
                    match submit_job(shared, spec) {
                        Ok(job) => {
                            wire::write_msg(&mut writer, &ServerReply::<Sol>::Submitted { job })?
                        }
                        // The WAL write failed: the job was NOT accepted
                        // (nothing durable, nothing queued), tell the
                        // client instead of acknowledging a job that a
                        // crash would silently lose.
                        Err(e) => wire::write_msg(
                            &mut writer,
                            &ServerReply::<Sol>::Error {
                                message: format!("ledger write failed: {e}"),
                            },
                        )?,
                    }
                }
            }
            ClientRequest::Cancel { job } => {
                let ok = cancel_job(shared, job);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::CancelResult { job, ok })?;
            }
            ClientRequest::Reclaim { job } => {
                let ok = reclaim_job(shared, job);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::CancelResult { job, ok })?;
            }
            ClientRequest::Fleet => {
                wire::write_msg(
                    &mut writer,
                    &ServerReply::<Sol>::Error {
                        message: "not a gateway: connect ugd fleet to a ugd-gateway".into(),
                    },
                )?;
            }
            ClientRequest::Status => {
                let status = server_status(shared);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::Status { status })?;
            }
            ClientRequest::Metrics => {
                let report = metrics_report(shared);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::Metrics { report })?;
            }
            ClientRequest::Watch { job, from_seq } => {
                stream_events(shared, &mut writer, job, from_seq)?;
            }
            ClientRequest::Shutdown => {
                wire::write_msg(&mut writer, &ServerReply::<Sol>::ShuttingDown)?;
                initiate_shutdown(shared);
                return Ok(());
            }
        }
    }
}

fn submit_job<Inst: Serialize, Sub: Serialize, Sol: Clone>(
    shared: &SharedState<Inst, Sub, Sol>,
    spec: JobSpec<Inst, Sub>,
) -> io::Result<u64> {
    let family = spec.family.clone().unwrap_or_else(|| "unknown".into());
    let (jid, run_index, resumed_nodes) = {
        let mut st = shared.state.lock().unwrap();
        // Write-ahead: the submission record must be durable before the
        // job id is acknowledged, otherwise a crash right after the ack
        // would silently lose an accepted job. The fsync happens under
        // the state lock, which is fine at job-submission rates.
        if let Some(ledger) = &shared.ledger {
            ledger.record_submitted(st.next_job, &spec)?;
        }
        let jid = st.next_job;
        st.next_job += 1;
        // A spec carrying a checkpoint (a gateway failing a job over
        // from a dead shard) enters mid-chain: resuming run k makes
        // this run k + 1, with the chain's nodes already banked.
        let (restart_from, run_index, resumed_nodes) = match &spec.restart_from {
            Some(json) => match crate::ledger::checkpoint_meta(json) {
                Some((run, nodes)) => (Some(json.clone()), run + 1, Some(nodes)),
                None => (None, 1, None), // torn checkpoint: from scratch
            },
            None => (None, 1, None),
        };
        st.jobs.insert(
            jid,
            JobRecord {
                spec,
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                inbox: None,
                restart_from,
                run_index,
            },
        );
        st.queue.push(jid);
        (jid, run_index, resumed_nodes)
    };
    shared
        .metrics
        .counter_with(
            "ugrs_server_jobs_submitted_total",
            &[("family", &family)],
            "Jobs accepted via Submit, by instance family",
        )
        .inc();
    emit(shared, jid, JobEventKind::Queued);
    if let Some(nodes_so_far) = resumed_nodes {
        emit(shared, jid, JobEventKind::Recovered { run_index, nodes_so_far });
    }
    shared.sched.notify_all();
    Ok(jid)
}

/// The work-stealing primitive: takes a *queued* job back so its owner
/// (a gateway) can resubmit it elsewhere. Atomic under the state lock —
/// a job that already started (or finished) is refused, because its
/// leased workers own it now. On success the job's ledger record is
/// retired here (the caller's own ledger keeps it at-least-once across
/// the move) and the job finishes `Cancelled`.
fn reclaim_job<Inst, Sub, Sol: Clone>(shared: &SharedState<Inst, Sub, Sol>, job: u64) -> bool {
    let run_index = {
        let mut st = shared.state.lock().unwrap();
        let Some(rec) = st.jobs.get_mut(&job) else { return false };
        if rec.state != JobState::Queued {
            return false;
        }
        rec.state = JobState::Cancelled;
        let run_index = rec.run_index;
        st.queue.retain(|&j| j != job);
        run_index
    };
    retire_ledger_record(shared, job);
    shared
        .metrics
        .counter("ugrs_server_jobs_reclaimed_total", "Queued jobs taken back via Reclaim")
        .inc();
    record_job_finished(shared, job, JobState::Cancelled);
    emit(shared, job, empty_finished(JobState::Cancelled, run_index));
    shared.sched.notify_all();
    true
}

fn cancel_job<Inst, Sub, Sol: Clone>(shared: &SharedState<Inst, Sub, Sol>, job: u64) -> bool {
    enum Outcome {
        NotCancellable,
        WasQueued { run_index: u32 },
        WasRunning,
    }
    let outcome = {
        let mut st = shared.state.lock().unwrap();
        let outcome = match st.jobs.get_mut(&job) {
            None => Outcome::NotCancellable,
            Some(rec) => match rec.state {
                JobState::Queued => {
                    rec.state = JobState::Cancelled;
                    Outcome::WasQueued { run_index: rec.run_index }
                }
                JobState::Running => {
                    rec.cancel.store(true, Ordering::SeqCst);
                    Outcome::WasRunning
                }
                _ => Outcome::NotCancellable,
            },
        };
        if matches!(outcome, Outcome::WasQueued { .. }) {
            st.queue.retain(|&j| j != job);
        }
        outcome
    };
    match outcome {
        Outcome::WasQueued { run_index } => {
            retire_ledger_record(shared, job);
            record_job_finished(shared, job, JobState::Cancelled);
            emit(shared, job, empty_finished(JobState::Cancelled, run_index));
            shared.sched.notify_all();
            true
        }
        Outcome::WasRunning => true,
        Outcome::NotCancellable => false,
    }
}

fn server_status<Inst, Sub, Sol>(shared: &SharedState<Inst, Sub, Sol>) -> ServerStatus {
    // `progress` is locked before `state` is taken (disjoint critical
    // sections) — the snapshot may lag a status by one interval, which
    // is fine for a status display.
    let open: HashMap<u64, u64> = {
        let p = shared.progress.lock().unwrap();
        p.iter().map(|(j, m)| (*j, m.open_nodes)).collect()
    };
    let st = shared.state.lock().unwrap();
    let mut workers: Vec<WorkerInfo> = st
        .workers
        .iter()
        .map(|(id, w)| WorkerInfo {
            id: *id,
            pid: w.pid,
            job: w.lease.map(|(j, _)| j),
            rank: w.lease.map(|(_, r)| r),
            draining: w.draining_since.is_some(),
        })
        .collect();
    workers.sort_by_key(|w| w.id);
    let jobs = st
        .jobs
        .iter()
        .map(|(j, r)| JobSummary {
            job: *j,
            name: r.spec.name.clone(),
            state: r.state,
            priority: r.spec.priority,
            num_solvers: r.spec.num_solvers,
            open_nodes: open.get(j).copied(),
            run_index: r.run_index,
        })
        .collect();
    ServerStatus { pool_target: shared.config.pool_size, workers, queued: st.queue.clone(), jobs }
}

/// Builds the [`ClientRequest::Metrics`] reply: refresh the pool/queue
/// gauges, render this server's registry plus the process-wide one,
/// synthesize per-job series from the progress snapshots, and attach
/// the structured snapshots themselves.
fn metrics_report<Inst, Sub, Sol>(shared: &SharedState<Inst, Sub, Sol>) -> MetricsReport {
    use std::fmt::Write as _;
    let progress: HashMap<u64, ProgressMsg> = shared.progress.lock().unwrap().clone();
    let jobs_meta: Vec<(u64, String, JobState)> = {
        let st = shared.state.lock().unwrap();
        let r = &shared.metrics;
        r.gauge("ugrs_server_pool_workers", "Connected pool workers").set(st.workers.len() as f64);
        r.gauge("ugrs_server_pool_target", "Configured pool size")
            .set(shared.config.pool_size as f64);
        r.gauge("ugrs_server_jobs_running", "Jobs currently running").set(st.running as f64);
        r.gauge("ugrs_server_queue_depth", "Jobs waiting in the queue").set(st.queue.len() as f64);
        // Busy/idle split of the pool: what a gateway's steal loop and
        // `ugd top` read to find starved and saturated shards.
        let busy = st.workers.values().filter(|w| w.lease.is_some()).count();
        r.gauge("ugrs_server_workers_busy", "Pool workers currently leased to a job")
            .set(busy as f64);
        r.gauge("ugrs_server_workers_idle", "Connected pool workers without a lease")
            .set(st.workers.len().saturating_sub(busy) as f64);
        st.jobs.iter().map(|(j, r)| (*j, r.spec.name.clone(), r.state)).collect()
    };
    let mut text = shared.metrics.render();
    telemetry::global().render_into(&mut text);
    // Per-job gauges, synthesized from the snapshots so the exposition
    // carries the coordinator-level view without a registry per job.
    type JobSeries = (&'static str, &'static str, fn(&ProgressMsg) -> f64);
    let families: [JobSeries; 5] = [
        ("ugrs_job_gap_percent", "Relative gap of the job, percent", |p| p.gap_percent),
        ("ugrs_job_open_nodes", "Open primitive nodes in the job's coordinator", |p| {
            p.open_nodes as f64
        }),
        ("ugrs_job_idle_percent", "Aggregate idle ratio of the job's solvers", |p| p.idle_percent),
        ("ugrs_job_dual_bound", "Global dual bound of the job (internal sense)", |p| p.dual_bound),
        ("ugrs_job_nodes_total", "B&B nodes processed by the job so far", |p| p.nodes as f64),
    ];
    for (name, help, get) in families {
        let mut any = false;
        for (jid, jname, _) in &jobs_meta {
            let Some(p) = progress.get(jid) else { continue };
            if !any {
                let _ = writeln!(text, "# HELP {name} {help}");
                let _ = writeln!(text, "# TYPE {name} gauge");
                any = true;
            }
            let _ = writeln!(
                text,
                "{name}{{job=\"{jid}\",name=\"{}\"}} {}",
                telemetry::escape_label(jname),
                telemetry::fmt_value(get(p))
            );
        }
    }
    let jobs = jobs_meta
        .into_iter()
        .map(|(job, name, state)| JobProgress {
            job,
            name,
            state,
            progress: progress.get(&job).cloned(),
        })
        .collect();
    MetricsReport { text, jobs }
}

fn stream_events<Inst, Sub, Sol: WireType>(
    shared: &SharedState<Inst, Sub, Sol>,
    writer: &mut TcpStream,
    job: u64,
    from_seq: usize,
) -> io::Result<()> {
    {
        let logs = shared.events.lock().unwrap();
        if !logs.contains_key(&job) {
            return wire::write_msg(
                writer,
                &ServerReply::<Sol>::Error { message: format!("unknown job {job}") },
            );
        }
    }
    let mut next = from_seq;
    loop {
        let (batch, done_len) = {
            let logs = shared.events.lock().unwrap();
            let log = &logs[&job];
            let batch: Vec<JobEvent<Sol>> =
                log.events.get(next..).map(|s| s.to_vec()).unwrap_or_default();
            let done_len = if log.done { Some(log.events.len()) } else { None };
            (batch, done_len)
        };
        next += batch.len();
        for event in batch {
            wire::write_msg(writer, &ServerReply::<Sol>::Event { event })?;
        }
        // `done` means the Finished event is in the log; once everything
        // up to the log's end is sent there is nothing more to stream.
        if matches!(done_len, Some(len) if next >= len) {
            return Ok(());
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let logs = shared.events.lock().unwrap();
        let _ = shared.events_cv.wait_timeout(logs, Duration::from_millis(200)).unwrap();
    }
}

// ---------------------------------------------------------------------
// The worker side: a standing pool member
// ---------------------------------------------------------------------

/// Joins a server's worker pool and serves jobs until the server hangs
/// up: the pool analogue of [`crate::runner::run_distributed_worker`].
/// `make_factory` turns each received instance into the base-solver
/// factory used for that job's subproblems.
pub fn serve_worker<Inst, S, F>(
    addr: &str,
    tag: Option<u64>,
    make_factory: F,
    status_interval: Duration,
    config: &ProcessCommConfig,
) -> io::Result<()>
where
    Inst: WireType,
    S: BaseSolver + 'static,
    F: Fn(&Inst) -> SolverFactory<S>,
{
    let deadline = Instant::now() + config.handshake_timeout;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    wire::write_msg(
        &mut (&stream),
        &PoolHello { protocol: POOL_PROTOCOL_VERSION, tag, pid: Some(std::process::id()) },
    )?;
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let welcome: PoolWelcome = wire::read_msg(&mut reader, &mut dec)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "server closed before welcome")
    })?;
    stream.set_read_timeout(None)?;
    let worker = welcome.worker;
    if let Some(plan) = &config.chaos {
        // Armed only after the handshake: a worker must always be able
        // to (re)join the pool, exactly as resume frames bypass chaos
        // on the per-call path.
        let _ = POOL_CHAOS
            .set(Mutex::new(PoolChaosState { injector: plan.injector(), partition_until: None }));
    }

    let writer = Arc::new(Mutex::new(stream));
    let hb_shutdown = Arc::new(AtomicBool::new(false));
    {
        let writer = writer.clone();
        let hb_shutdown = hb_shutdown.clone();
        let interval = config.heartbeat_interval;
        std::thread::Builder::new()
            .name(format!("pool-heartbeat-{worker}"))
            .spawn(move || loop {
                std::thread::sleep(interval);
                if hb_shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let ping: PoolUp<S::Sub, S::Sol> = PoolUp::Ping { worker };
                let mut stream = writer.lock().unwrap();
                if pool_chaos_write(&mut stream, &ping).is_err() {
                    return;
                }
            })
            .expect("spawn pool heartbeat thread");
    }
    let (down_tx, down_rx) = channel::<PoolDown<Inst, S::Sub, S::Sol>>();
    std::thread::Builder::new()
        .name(format!("pool-downlink-{worker}"))
        .spawn(move || loop {
            match wire::read_msg::<PoolDown<Inst, S::Sub, S::Sol>, _>(&mut reader, &mut dec) {
                Ok(Some(m)) => {
                    if down_tx.send(m).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => return, // server gone: recv() errors out
            }
        })
        .expect("spawn pool downlink thread");

    let result = serve_loop::<Inst, S>(worker, &writer, &down_rx, &make_factory, status_interval);
    hb_shutdown.store(true, Ordering::SeqCst);
    if let Ok(stream) = writer.lock() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    result
}

fn serve_loop<Inst, S>(
    worker: u64,
    writer: &Mutex<TcpStream>,
    down_rx: &Receiver<PoolDown<Inst, S::Sub, S::Sol>>,
    make_factory: &dyn Fn(&Inst) -> SolverFactory<S>,
    status_interval: Duration,
) -> io::Result<()>
where
    Inst: WireType,
    S: BaseSolver + 'static,
{
    let mut current: Option<(u64, SolverFactory<S>)> = None;
    loop {
        let Ok(down) = down_rx.recv() else { return Ok(()) };
        match down {
            PoolDown::Begin { job, instance } => current = Some((job, make_factory(&instance))),
            PoolDown::Ug { job, msg } => {
                let (cur, factory) = match current.as_ref() {
                    Some((c, f)) => (*c, f.clone()),
                    None => continue,
                };
                if cur != job {
                    continue; // stale frame of a finished job
                }
                match msg {
                    Message::Terminate => {
                        send_up(writer, &PoolUp::<S::Sub, S::Sol>::JobDone { job, worker });
                        current = None;
                    }
                    Message::Subproblem { sub, incumbent, settings } => {
                        let settings = settings.unwrap_or_else(SolverSettings::default_bundle);
                        let mut solver = factory(worker as usize, &settings);
                        let mut ctl = ServeCtl {
                            writer,
                            down_rx,
                            job,
                            worker,
                            collect: false,
                            abort: false,
                            terminate_seen: false,
                            pending_incumbent: incumbent,
                            last_status: Instant::now(),
                            status_interval,
                        };
                        let outcome = solver.solve_subproblem(
                            &sub.sub,
                            sub.dual_bound,
                            ctl.pending_incumbent.clone().map(|p| p.0).as_ref(),
                            &mut ctl,
                        );
                        let terminate_after = ctl.terminate_seen;
                        send_up(
                            writer,
                            &PoolUp::Ug {
                                job,
                                worker,
                                msg: Message::<S::Sub, S::Sol>::Completed {
                                    rank: 0,
                                    dual_bound: outcome.dual_bound.max(sub.dual_bound),
                                    nodes: outcome.nodes,
                                    aborted: outcome.aborted,
                                },
                            },
                        );
                        if terminate_after {
                            send_up(writer, &PoolUp::<S::Sub, S::Sol>::JobDone { job, worker });
                            current = None;
                        }
                    }
                    _ => {} // stale control while idle
                }
            }
        }
    }
}

fn send_up<Sub: Serialize, Sol: Serialize>(
    writer: &Mutex<TcpStream>,
    msg: &PoolUp<Sub, Sol>,
) -> bool {
    let mut stream = writer.lock().unwrap();
    pool_chaos_write(&mut stream, msg).is_ok()
}

/// Pool-path fault injection: one process-global injector (a pool
/// worker is one process holding one connection), armed once in
/// [`serve_worker`] from `ProcessCommConfig::chaos` and `None` in
/// production. The pool transport has no session resume — a torn
/// connection here is recovered by *replacement* (the server requeues
/// the job and refills the pool), so chaos on this path exercises the
/// worker-loss machinery rather than reconnect/replay.
static POOL_CHAOS: std::sync::OnceLock<Mutex<PoolChaosState>> = std::sync::OnceLock::new();

struct PoolChaosState {
    injector: crate::chaos::FaultInjector,
    partition_until: Option<Instant>,
}

/// Writes one upward frame through the armed fault schedule (or
/// directly when chaos is off). Mirrors the per-call worker's
/// semantics: a Drop discards the frame *and* tears the connection,
/// Corrupt flips one bit for the server's CRC to catch, Partition
/// silences writes until the server's liveness sweep fires.
fn pool_chaos_write<T: Serialize>(stream: &mut TcpStream, msg: &T) -> io::Result<()> {
    let Some(chaos) = POOL_CHAOS.get() else { return wire::write_msg(stream, msg) };
    let mut st = chaos.lock().unwrap();
    if let Some(until) = st.partition_until {
        if Instant::now() < until {
            st.injector.on_frame(); // the schedule keeps ticking while silent
            return Ok(());
        }
        st.partition_until = None;
    }
    let frame = wire::encode(msg);
    match st.injector.on_frame() {
        crate::chaos::FaultAction::Pass => {}
        crate::chaos::FaultAction::Delay(d) => std::thread::sleep(d),
        crate::chaos::FaultAction::Duplicate => stream.write_all(&frame)?,
        crate::chaos::FaultAction::Corrupt { bit } => {
            let mut bad = frame.clone();
            let b = (bit as usize) % (bad.len() * 8);
            bad[b / 8] ^= 1 << (b % 8);
            stream.write_all(&bad)?;
            return stream.flush();
        }
        crate::chaos::FaultAction::Drop => {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(io::Error::other("chaos: frame dropped, connection torn"));
        }
        crate::chaos::FaultAction::Partition(d) => {
            st.partition_until = Some(Instant::now() + d);
            return Ok(());
        }
        crate::chaos::FaultAction::Kill => std::process::exit(137),
    }
    stream.write_all(&frame)?;
    stream.flush()
}

/// [`ParaControl`] of a pool worker: like the plain worker's control
/// surface, but frames travel as [`PoolUp::Ug`] tagged with the job id,
/// and the downlink multiplexes [`PoolDown`] (job-tagged) instead of
/// raw messages. Reports itself as rank 0 — the server rewrites.
struct ServeCtl<'a, Inst, Sub, Sol> {
    writer: &'a Mutex<TcpStream>,
    down_rx: &'a Receiver<PoolDown<Inst, Sub, Sol>>,
    job: u64,
    worker: u64,
    collect: bool,
    abort: bool,
    terminate_seen: bool,
    pending_incumbent: Option<(Sol, f64)>,
    last_status: Instant,
    status_interval: Duration,
}

impl<Inst, Sub, Sol> ServeCtl<'_, Inst, Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    fn pump(&mut self) {
        while let Ok(down) = self.down_rx.try_recv() {
            // `Begin` mid-solve cannot happen (leases release on
            // JobDone only); drop it and wrong-job frames defensively.
            let PoolDown::Ug { job, msg } = down else { continue };
            if job != self.job {
                continue;
            }
            match msg {
                Message::Incumbent { sol, obj } => {
                    let better = self.pending_incumbent.as_ref().is_none_or(|(_, cur)| obj < *cur);
                    if better {
                        self.pending_incumbent = Some((sol, obj));
                    }
                }
                Message::StartCollecting => self.collect = true,
                Message::StopCollecting => self.collect = false,
                Message::AbortSubproblem => self.abort = true,
                Message::Terminate => {
                    self.abort = true;
                    self.terminate_seen = true;
                }
                _ => {}
            }
        }
    }

    fn send(&self, msg: Message<Sub, Sol>) {
        send_up(self.writer, &PoolUp::Ug { job: self.job, worker: self.worker, msg });
    }
}

impl<Inst, Sub, Sol> ParaControl<Sub, Sol> for ServeCtl<'_, Inst, Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    fn should_abort(&mut self) -> bool {
        self.pump();
        self.abort
    }

    fn on_solution(&mut self, sol: Sol, obj: f64) {
        self.send(Message::SolutionFound { rank: 0, sol, obj });
    }

    fn poll_incumbent(&mut self) -> Option<(Sol, f64)> {
        self.pump();
        self.pending_incumbent.take()
    }

    fn on_status(&mut self, dual_bound: f64, open: usize, nodes: u64) {
        if self.last_status.elapsed() >= self.status_interval {
            self.last_status = Instant::now();
            self.send(Message::Status { rank: 0, dual_bound, open, nodes });
        }
    }

    fn collect_requested(&mut self) -> bool {
        self.pump();
        self.collect
    }

    fn export_subproblem(&mut self, sub: Sub, dual_bound: f64) {
        self.send(Message::ExportedNode {
            rank: 0,
            sub: crate::messages::SubproblemMsg { sub, dual_bound },
        });
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Zero-sized marker pinning a client to its server's wire types.
type ClientTypes<Inst, Sub, Sol> = PhantomData<fn() -> (Inst, Sub, Sol)>;

/// A blocking client of one [`Server`] (one TCP connection).
pub struct JobClient<Inst, Sub, Sol> {
    stream: TcpStream,
    dec: FrameDecoder,
    _types: ClientTypes<Inst, Sub, Sol>,
}

/// Outcome of [`JobClient::try_submit`]: admission control made a
/// rejected submit a normal answer, not an I/O error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job was accepted under this id.
    Accepted(u64),
    /// Admission control refused it (quota, capacity or draining).
    Rejected(String),
}

impl<Inst: WireType, Sub: WireType, Sol: WireType> JobClient<Inst, Sub, Sol> {
    /// Connects to a server's client address.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(JobClient { stream, dec: FrameDecoder::new(), _types: PhantomData })
    }

    /// Like [`Self::connect`], but bounded: both the TCP connect and
    /// every later read time out after `timeout` instead of blocking
    /// forever. This is the health-probe constructor — a gateway must
    /// never let one dead shard wedge its sweep. Not suitable for
    /// [`Self::watch`] on long-running jobs (events can be sparser than
    /// any sensible probe timeout).
    pub fn connect_timeout(addr: &str, timeout: Duration) -> io::Result<Self> {
        use std::net::ToSocketAddrs;
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(timeout))?;
        Ok(JobClient { stream, dec: FrameDecoder::new(), _types: PhantomData })
    }

    fn read_reply(&mut self) -> io::Result<ServerReply<Sol>> {
        wire::read_msg(&mut self.stream, &mut self.dec)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    fn request(&mut self, req: &ClientRequest<Inst, Sub>) -> io::Result<ServerReply<Sol>> {
        wire::write_msg(&mut self.stream, req)?;
        self.read_reply()
    }

    /// Submits a job; returns its id. An admission-control rejection
    /// surfaces as an error here — use [`Self::try_submit`] to tell a
    /// quota refusal apart from a transport failure.
    pub fn submit(&mut self, spec: JobSpec<Inst, Sub>) -> io::Result<u64> {
        match self.try_submit(spec)? {
            SubmitOutcome::Accepted(job) => Ok(job),
            SubmitOutcome::Rejected(reason) => Err(io::Error::other(format!("rejected: {reason}"))),
        }
    }

    /// Submits a job, reporting an admission-control rejection as a
    /// normal [`SubmitOutcome`] instead of an error.
    pub fn try_submit(&mut self, spec: JobSpec<Inst, Sub>) -> io::Result<SubmitOutcome> {
        match self.request(&ClientRequest::Submit { spec })? {
            ServerReply::Submitted { job } => Ok(SubmitOutcome::Accepted(job)),
            ServerReply::Rejected { reason } => Ok(SubmitOutcome::Rejected(reason)),
            ServerReply::Error { message } => Err(io::Error::other(message)),
            _ => Err(unexpected_reply()),
        }
    }

    /// Takes a *queued* job back from the server (the work-stealing
    /// primitive); `Ok(false)` when it already started or finished.
    pub fn reclaim(&mut self, job: u64) -> io::Result<bool> {
        match self.request(&ClientRequest::Reclaim { job })? {
            ServerReply::CancelResult { ok, .. } => Ok(ok),
            _ => Err(unexpected_reply()),
        }
    }

    /// Fetches the fleet snapshot (gateways only; a plain server
    /// answers with an error).
    pub fn fleet(&mut self) -> io::Result<FleetStatus> {
        match self.request(&ClientRequest::Fleet)? {
            ServerReply::Fleet { fleet } => Ok(fleet),
            ServerReply::Error { message } => Err(io::Error::other(message)),
            _ => Err(unexpected_reply()),
        }
    }

    /// Cancels a job; `Ok(false)` when it already reached a terminal
    /// state (or is unknown).
    pub fn cancel(&mut self, job: u64) -> io::Result<bool> {
        match self.request(&ClientRequest::Cancel { job })? {
            ServerReply::CancelResult { ok, .. } => Ok(ok),
            _ => Err(unexpected_reply()),
        }
    }

    /// Fetches a [`ServerStatus`] snapshot.
    pub fn status(&mut self) -> io::Result<ServerStatus> {
        match self.request(&ClientRequest::Status)? {
            ServerReply::Status { status } => Ok(status),
            _ => Err(unexpected_reply()),
        }
    }

    /// Fetches the Prometheus-style exposition plus per-job progress
    /// snapshots (what `ugd top` refreshes on).
    pub fn metrics(&mut self) -> io::Result<MetricsReport> {
        match self.request(&ClientRequest::Metrics)? {
            ServerReply::Metrics { report } => Ok(report),
            _ => Err(unexpected_reply()),
        }
    }

    /// Streams the job's events from `from_seq`, invoking `on_event`
    /// for each, until (and including) the terminal `Finished` event,
    /// which is returned.
    pub fn watch(
        &mut self,
        job: u64,
        from_seq: usize,
        mut on_event: impl FnMut(&JobEvent<Sol>),
    ) -> io::Result<JobEvent<Sol>> {
        wire::write_msg(&mut self.stream, &ClientRequest::<Inst, Sub>::Watch { job, from_seq })?;
        loop {
            match self.read_reply()? {
                ServerReply::Event { event } => {
                    on_event(&event);
                    if matches!(event.kind, JobEventKind::Finished { .. }) {
                        return Ok(event);
                    }
                }
                ServerReply::Error { message } => {
                    return Err(io::Error::new(io::ErrorKind::NotFound, message));
                }
                _ => return Err(unexpected_reply()),
            }
        }
    }

    /// Blocks until the job finishes; returns the terminal event.
    pub fn wait(&mut self, job: u64) -> io::Result<JobEvent<Sol>> {
        self.watch(job, 0, |_| {})
    }

    /// Asks the server to shut down.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(&ClientRequest::Shutdown)? {
            ServerReply::ShuttingDown => Ok(()),
            _ => Err(unexpected_reply()),
        }
    }
}

fn unexpected_reply() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "unexpected reply kind")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UgStats;

    #[test]
    fn job_state_terminality() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for s in [
            JobState::Solved,
            JobState::Infeasible,
            JobState::TimedOut,
            JobState::Cancelled,
            JobState::Failed,
        ] {
            assert!(s.is_terminal());
        }
    }

    fn result(
        solved: bool,
        solution: Option<(u32, f64)>,
        workers_died: u64,
    ) -> ParallelResult<u32, u32> {
        ParallelResult {
            solution,
            dual_bound: 0.0,
            solved,
            stats: UgStats { workers_died, ..UgStats::default() },
            final_checkpoint: None,
        }
    }

    #[test]
    fn classify_covers_every_terminal_state() {
        assert_eq!(classify(&result(true, Some((1, 5.0)), 0), false, 2), JobState::Solved);
        assert_eq!(classify(&result(true, None, 0), false, 2), JobState::Infeasible);
        assert_eq!(classify(&result(false, None, 0), true, 2), JobState::Cancelled);
        assert_eq!(classify(&result(false, None, 2), false, 2), JobState::Failed);
        assert_eq!(classify(&result(false, None, 1), false, 2), JobState::TimedOut);
        // A cancel that arrives after the proof changes nothing.
        assert_eq!(classify(&result(true, Some((1, 5.0)), 0), true, 2), JobState::Solved);
    }

    #[test]
    fn set_rank_rewrites_every_upward_variant() {
        let mut msgs: Vec<Message<u32, u32>> = vec![
            Message::SolutionFound { rank: 0, sol: 1, obj: 2.0 },
            Message::Status { rank: 0, dual_bound: 1.0, open: 2, nodes: 3 },
            Message::ExportedNode {
                rank: 0,
                sub: crate::messages::SubproblemMsg { sub: 1, dual_bound: 0.0 },
            },
            Message::Completed { rank: 0, dual_bound: 1.0, nodes: 2, aborted: false },
            Message::WorkerDied { rank: 0 },
        ];
        for m in msgs.iter_mut() {
            set_rank(m, 7);
        }
        for m in &msgs {
            let got = match m {
                Message::SolutionFound { rank, .. }
                | Message::Status { rank, .. }
                | Message::ExportedNode { rank, .. }
                | Message::Completed { rank, .. }
                | Message::WorkerDied { rank } => *rank,
                _ => unreachable!(),
            };
            assert_eq!(got, 7);
        }
        // Downward messages are untouched.
        let mut down: Message<u32, u32> = Message::Terminate;
        set_rank(&mut down, 7);
        assert_eq!(down.tag(), "termination");
    }

    #[test]
    fn pool_down_ug_mirror_is_wire_compatible() {
        let mirror: PoolDownUg<u32, u32> =
            PoolDownUg::Ug { job: 9, msg: Message::Incumbent { sol: 3, obj: 1.5 } };
        let bytes = wire::encode(&mirror);
        let full: PoolDown<String, u32, u32> = wire::decode(&bytes[4..]).unwrap();
        match full {
            PoolDown::Ug { job, msg } => {
                assert_eq!(job, 9);
                assert_eq!(msg.tag(), "incumbent");
            }
            other => panic!("mirror decoded as {other:?}"),
        }
    }

    #[test]
    fn job_spec_new_has_sane_defaults() {
        let spec: JobSpec<String, u32> = JobSpec::new("j", "inst".into(), 0);
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.num_solvers, 2);
        assert!(spec.time_limit.is_infinite());
        assert!(spec.node_limit.is_none());
    }
}
