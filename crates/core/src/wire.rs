//! The wire codec of the distributed back-end: how a [`crate::Message`]
//! becomes bytes on a socket and comes back out intact.
//!
//! Framing is 4-byte big-endian length prefix + JSON payload. JSON
//! (rather than a binary format) keeps frames human-debuggable with
//! `tcpdump`/`nc` and reuses the exact serde path the checkpoint files
//! already exercise — including the non-finite-float extension, which
//! matters because every root subproblem ships with a `-Infinity` dual
//! bound. The decoder is incremental: bytes arrive in arbitrary chunks
//! (TCP guarantees order, not boundaries) and are buffered until a
//! whole frame is available.

use bytes::{Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{Read, Write};

/// Refuse frames larger than this (a corrupt or malicious length prefix
/// would otherwise make the receiver try to buffer gigabytes).
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// A decode-side failure: framing violation or malformed payload.
#[derive(Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serializes `msg` into one framed buffer (prefix + payload), ready
/// for a single `write_all`. Every encoded frame is counted in the
/// process-wide wire telemetry ([`crate::telemetry::wire`]), covering
/// all transports without per-call-site plumbing.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    let payload = serde_json::to_vec(msg).expect("wire messages must serialize");
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(&payload);
    let w = crate::telemetry::wire();
    w.tx_frames.inc();
    w.tx_bytes.add(framed.len() as u64);
    framed
}

/// Deserializes one frame *payload* (without the length prefix).
/// Counts the frame in the process-wide rx wire telemetry.
pub fn decode<T: DeserializeOwned>(payload: &[u8]) -> Result<T, WireError> {
    let w = crate::telemetry::wire();
    w.rx_frames.inc();
    w.rx_bytes.add(payload.len() as u64 + 4);
    serde_json::from_slice(payload).map_err(|e| WireError(format!("bad payload: {e:?}")))
}

/// Incremental frame extractor: push received chunks in, pull complete
/// frame payloads out. Never blocks and never loses partial data.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder { buf: BytesMut::new() }
    }

    /// Appends freshly received bytes (any chunking).
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Extracts the next complete frame payload, or `None` if more
    /// bytes are needed. Errors only on an over-limit length prefix; the
    /// buffered bytes are discarded then, so a decoder that is handed a
    /// fresh, valid frame afterwards (e.g. on a new connection) resumes
    /// cleanly instead of re-reporting the same poisoned prefix forever.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            self.buf.clear();
            return Err(WireError(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let mut frame = self.buf.split_to(4 + len);
        let _prefix = frame.split_to(4);
        Ok(Some(frame.freeze()))
    }
}

/// Writes one message as a single frame.
pub fn write_msg<T: Serialize, W: Write>(w: &mut W, msg: &T) -> std::io::Result<()> {
    w.write_all(&encode(msg))?;
    w.flush()
}

/// Reads until one whole message is decodable. Returns `Ok(None)` on a
/// clean EOF *between* frames; EOF mid-frame is an error. Honors the
/// reader's own timeout semantics (e.g. `TcpStream::set_read_timeout`)
/// by propagating `WouldBlock`/`TimedOut` errors untouched.
pub fn read_msg<T: DeserializeOwned, R: Read>(
    r: &mut R,
    dec: &mut FrameDecoder,
) -> std::io::Result<Option<T>> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if let Some(frame) = dec.next_frame()? {
            return Ok(Some(decode(&frame)?));
        }
        match r.read(&mut chunk) {
            Ok(0) => {
                return if dec.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                }
            }
            Ok(n) => dec.push(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let msg = vec![(1u32, f64::NEG_INFINITY), (2, 3.5)];
        let framed = encode(&msg);
        assert_eq!(&framed[..4], &((framed.len() as u32 - 4).to_be_bytes()));
        let back: Vec<(u32, f64)> = decode(&framed[4..]).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn decoder_handles_split_and_coalesced_frames() {
        let a = encode(&"first".to_string());
        let b = encode(&"second".to_string());
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);

        let mut dec = FrameDecoder::new();
        // Feed one byte at a time: worst-case fragmentation.
        let mut out: Vec<String> = Vec::new();
        for byte in stream {
            dec.push(&[byte]);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(decode(&frame).unwrap());
            }
        }
        assert_eq!(out, vec!["first".to_string(), "second".to_string()]);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_be_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn read_msg_round_trips_over_a_reader() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &42u64).unwrap();
        write_msg(&mut buf, &43u64).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut dec = FrameDecoder::new();
        assert_eq!(read_msg::<u64, _>(&mut cursor, &mut dec).unwrap(), Some(42));
        assert_eq!(read_msg::<u64, _>(&mut cursor, &mut dec).unwrap(), Some(43));
        assert_eq!(read_msg::<u64, _>(&mut cursor, &mut dec).unwrap(), None);
    }
}
