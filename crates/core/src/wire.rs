//! The wire codec of the distributed back-end: how a [`crate::Message`]
//! becomes bytes on a socket and comes back out intact.
//!
//! Two frame formats share the socket, negotiated at handshake:
//!
//! * **v1** — 4-byte big-endian length prefix + JSON payload. JSON
//!   (rather than a binary format) keeps frames human-debuggable with
//!   `tcpdump`/`nc` and reuses the exact serde path the checkpoint
//!   files already exercise — including the non-finite-float
//!   extension, which matters because every root subproblem ships
//!   with a `-Infinity` dual bound.
//! * **v2** — the same length prefix followed by a [`FrameHeader`]:
//!   a header CRC32, a sequence number, a cumulative ack, and a
//!   payload CRC32. The two CRCs make any single flipped bit anywhere
//!   in the frame (length prefix included) surface as
//!   [`WireError::Corrupt`] instead of desynchronizing the stream,
//!   and the seq/ack pair is what lets [`crate::process`] replay
//!   un-acked frames and suppress duplicates across a reconnect.
//!
//! The decoder is incremental: bytes arrive in arbitrary chunks (TCP
//! guarantees order, not boundaries) and are buffered until a whole
//! frame is available.

use bytes::{Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{Read, Write};

/// Refuse frames larger than this (a corrupt or malicious length prefix
/// would otherwise make the receiver try to buffer gigabytes).
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Bytes between the length prefix and the payload in a v2 frame:
/// header CRC (4) + seq (8) + ack (8) + payload CRC (4).
pub const V2_HEADER_LEN: usize = 24;

/// A decode-side failure, structured so transport policy can tell
/// retryable faults from protocol bugs: everything except [`Codec`]
/// is survivable by dropping the connection and reconnecting, while a
/// `Codec` error means a CRC-clean frame carried unparseable JSON —
/// the peer speaks a different protocol and retrying cannot help.
///
/// [`Codec`]: WireError::Codec
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// An I/O-level fault wrapped into the wire domain (used when
    /// classifying transport errors; the codec itself never does I/O).
    Io(String),
    /// A CRC32 mismatch: the bytes on the wire are not the bytes that
    /// were sent. Retryable — a reconnect re-syncs the stream.
    Corrupt(String),
    /// A (CRC-valid) length prefix beyond [`MAX_FRAME_LEN`].
    TooLarge {
        /// The offending frame length.
        len: usize,
    },
    /// The payload passed its CRC but failed to deserialize: a
    /// protocol bug, not line noise. Fatal — never retried.
    Codec(String),
}

impl WireError {
    /// True when reconnecting may fix it (everything but [`WireError::Codec`]).
    pub fn is_retryable(&self) -> bool {
        !matches!(self, WireError::Codec(_))
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(m) => write!(f, "wire i/o error: {m}"),
            WireError::Corrupt(m) => write!(f, "wire corruption: {m}"),
            WireError::TooLarge { len } => {
                write!(f, "wire frame length {len} exceeds {MAX_FRAME_LEN}")
            }
            WireError::Codec(m) => write!(f, "wire codec error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Classifies an I/O error from a read/write loop for reconnect
/// policy: `true` only for a [`WireError::Codec`] buried inside —
/// plain socket errors, EOFs and CRC faults are all retryable.
pub fn io_error_is_fatal(e: &std::io::Error) -> bool {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<WireError>())
        .is_some_and(|w| !w.is_retryable())
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — hand-rolled so the
// wire stays dependency-free.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC32 (IEEE) of one buffer.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_parts(&[data])
}

/// CRC32 (IEEE) over the concatenation of `parts`.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for p in parts {
        crc = crc32_update(crc, p);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// The per-frame header of the v2 format: sequence number of this
/// frame and cumulative ack of the peer's frames ("I have received
/// everything below `ack`"). The two CRCs are computed and verified
/// by the codec and never surface here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sender-assigned, strictly increasing per connection *session*
    /// (it survives reconnects, which is what makes replayed frames
    /// recognizable as duplicates).
    pub seq: u64,
    /// The sender has received every peer frame with `seq < ack`.
    pub ack: u64,
}

fn count_tx(bytes: usize) {
    let w = crate::telemetry::wire();
    w.tx_frames.inc();
    w.tx_bytes.add(bytes as u64);
}

/// Wraps an already-serialized payload in a v1 frame (length prefix
/// only). Counts the frame in the process-wide tx wire telemetry.
pub fn frame_v1(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(payload);
    count_tx(framed.len());
    framed
}

/// Wraps an already-serialized payload in a v2 frame: length prefix,
/// header CRC, seq, ack, payload CRC, payload. Counts tx telemetry.
pub fn frame_v2(payload: &[u8], header: FrameHeader) -> Vec<u8> {
    let len = ((V2_HEADER_LEN + payload.len()) as u32).to_be_bytes();
    let seq = header.seq.to_be_bytes();
    let ack = header.ack.to_be_bytes();
    let pcrc = crc32(payload).to_be_bytes();
    let hcrc = crc32_parts(&[&len, &seq, &ack, &pcrc]).to_be_bytes();
    let mut framed = Vec::with_capacity(4 + V2_HEADER_LEN + payload.len());
    framed.extend_from_slice(&len);
    framed.extend_from_slice(&hcrc);
    framed.extend_from_slice(&seq);
    framed.extend_from_slice(&ack);
    framed.extend_from_slice(&pcrc);
    framed.extend_from_slice(payload);
    count_tx(framed.len());
    framed
}

/// Serializes `msg` to its JSON payload bytes (no framing, no
/// telemetry) — what retransmit rings store, so a replay re-frames
/// the identical payload under a fresh header.
pub fn to_payload<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_vec(msg).expect("wire messages must serialize")
}

/// Serializes `msg` into one v1 framed buffer (prefix + payload),
/// ready for a single `write_all`. Every encoded frame is counted in
/// the process-wide wire telemetry ([`crate::telemetry::wire`]),
/// covering all transports without per-call-site plumbing.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    frame_v1(&to_payload(msg))
}

/// Deserializes one frame *payload* (without prefix or header).
/// Counts the frame in the process-wide rx wire telemetry.
pub fn decode<T: DeserializeOwned>(payload: &[u8]) -> Result<T, WireError> {
    let w = crate::telemetry::wire();
    w.rx_frames.inc();
    w.rx_bytes.add(payload.len() as u64 + 4);
    serde_json::from_slice(payload).map_err(|e| WireError::Codec(format!("bad payload: {e:?}")))
}

/// Incremental frame extractor: push received chunks in, pull complete
/// frame payloads out. Never blocks and never loses partial data.
/// Starts in v1 mode; [`Self::set_v2`] switches formats mid-stream
/// (buffered bytes are kept), which is how the handshake upgrades a
/// connection.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
    v2: bool,
}

impl FrameDecoder {
    /// An empty decoder (v1 format).
    pub fn new() -> Self {
        FrameDecoder { buf: BytesMut::new(), v2: false }
    }

    /// Switches the expected frame format; already-buffered bytes are
    /// re-interpreted under the new format.
    pub fn set_v2(&mut self, v2: bool) {
        self.v2 = v2;
    }

    /// Appends freshly received bytes (any chunking).
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Extracts the next complete frame payload, discarding any v2
    /// header. See [`Self::next_frame2`] for error behavior.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        Ok(self.next_frame2()?.map(|(_, payload)| payload))
    }

    /// Extracts the next complete frame (header + payload), or `None`
    /// if more bytes are needed.
    ///
    /// v1 frames carry a zeroed header. Errors: an over-limit length
    /// prefix yields [`WireError::TooLarge`] (v1, or v2 with a valid
    /// header CRC), a CRC mismatch yields [`WireError::Corrupt`]. On
    /// `TooLarge` the buffer is discarded so a decoder handed a fresh,
    /// valid frame afterwards (e.g. on a new connection) resumes
    /// cleanly; on `Corrupt` the stream is unrecoverable by design —
    /// the caller must drop the connection.
    pub fn next_frame2(&mut self) -> Result<Option<(FrameHeader, Bytes)>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if !self.v2 {
            if len > MAX_FRAME_LEN {
                self.buf.clear();
                return Err(WireError::TooLarge { len });
            }
            if self.buf.len() < 4 + len {
                return Ok(None);
            }
            let mut frame = self.buf.split_to(4 + len);
            let _prefix = frame.split_to(4);
            return Ok(Some((FrameHeader::default(), frame.freeze())));
        }
        // v2: the header CRC is verified before the length is trusted,
        // so a bit flipped in the length prefix surfaces as Corrupt
        // instead of stalling the stream or reading a wrong boundary.
        if self.buf.len() < 4 + V2_HEADER_LEN {
            return Ok(None);
        }
        let hcrc = u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        let computed = crc32_parts(&[&self.buf[0..4], &self.buf[8..4 + V2_HEADER_LEN]]);
        if hcrc != computed {
            crate::telemetry::comm().frames_corrupt.inc();
            self.buf.clear();
            return Err(WireError::Corrupt(format!(
                "header crc mismatch ({hcrc:08x} != {computed:08x})"
            )));
        }
        if len > MAX_FRAME_LEN {
            self.buf.clear();
            return Err(WireError::TooLarge { len });
        }
        if len < V2_HEADER_LEN {
            self.buf.clear();
            return Err(WireError::Corrupt(format!("v2 frame length {len} below header size")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let mut frame = self.buf.split_to(4 + len);
        let _prefix_and_hcrc = frame.split_to(8);
        let seq = u64::from_be_bytes(frame[0..8].try_into().expect("8 bytes"));
        let ack = u64::from_be_bytes(frame[8..16].try_into().expect("8 bytes"));
        let pcrc = u32::from_be_bytes(frame[16..20].try_into().expect("4 bytes"));
        let _seq_ack_pcrc = frame.split_to(20);
        let payload = frame.freeze();
        let computed = crc32(&payload);
        if pcrc != computed {
            crate::telemetry::comm().frames_corrupt.inc();
            self.buf.clear();
            return Err(WireError::Corrupt(format!(
                "payload crc mismatch ({pcrc:08x} != {computed:08x})"
            )));
        }
        Ok(Some((FrameHeader { seq, ack }, payload)))
    }
}

/// Writes one message as a single v1 frame.
pub fn write_msg<T: Serialize, W: Write>(w: &mut W, msg: &T) -> std::io::Result<()> {
    w.write_all(&encode(msg))?;
    w.flush()
}

/// Reads until one whole message is decodable. Returns `Ok(None)` on a
/// clean EOF *between* frames; EOF mid-frame is an error. Honors the
/// reader's own timeout semantics (e.g. `TcpStream::set_read_timeout`)
/// by propagating `WouldBlock`/`TimedOut` errors untouched.
pub fn read_msg<T: DeserializeOwned, R: Read>(
    r: &mut R,
    dec: &mut FrameDecoder,
) -> std::io::Result<Option<T>> {
    match read_frame(r, dec)? {
        Some((_, payload)) => Ok(Some(decode(&payload)?)),
        None => Ok(None),
    }
}

/// Reads until one whole frame (header + raw payload) is available.
/// Same EOF/timeout semantics as [`read_msg`].
pub fn read_frame<R: Read>(
    r: &mut R,
    dec: &mut FrameDecoder,
) -> std::io::Result<Option<(FrameHeader, Bytes)>> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if let Some(frame) = dec.next_frame2()? {
            return Ok(Some(frame));
        }
        match r.read(&mut chunk) {
            Ok(0) => {
                return if dec.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                }
            }
            Ok(n) => dec.push(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let msg = vec![(1u32, f64::NEG_INFINITY), (2, 3.5)];
        let framed = encode(&msg);
        assert_eq!(&framed[..4], &((framed.len() as u32 - 4).to_be_bytes()));
        let back: Vec<(u32, f64)> = decode(&framed[4..]).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn decoder_handles_split_and_coalesced_frames() {
        let a = encode(&"first".to_string());
        let b = encode(&"second".to_string());
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);

        let mut dec = FrameDecoder::new();
        // Feed one byte at a time: worst-case fragmentation.
        let mut out: Vec<String> = Vec::new();
        for byte in stream {
            dec.push(&[byte]);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(decode(&frame).unwrap());
            }
        }
        assert_eq!(out, vec!["first".to_string(), "second".to_string()]);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn read_msg_round_trips_over_a_reader() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &42u64).unwrap();
        write_msg(&mut buf, &43u64).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut dec = FrameDecoder::new();
        assert_eq!(read_msg::<u64, _>(&mut cursor, &mut dec).unwrap(), Some(42));
        assert_eq!(read_msg::<u64, _>(&mut cursor, &mut dec).unwrap(), Some(43));
        assert_eq!(read_msg::<u64, _>(&mut cursor, &mut dec).unwrap(), None);
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn v2_round_trip_preserves_header_and_payload() {
        let payload = to_payload(&"hello".to_string());
        let framed = frame_v2(&payload, FrameHeader { seq: 7, ack: 3 });
        let mut dec = FrameDecoder::new();
        dec.set_v2(true);
        dec.push(&framed);
        let (h, p) = dec.next_frame2().unwrap().expect("complete frame");
        assert_eq!(h, FrameHeader { seq: 7, ack: 3 });
        let s: String = decode(&p).unwrap();
        assert_eq!(s, "hello");
        assert!(dec.next_frame2().unwrap().is_none());
    }

    #[test]
    fn v2_single_bit_flip_is_caught_everywhere() {
        let payload = to_payload(&vec![1u64, 2, 3]);
        let framed = frame_v2(&payload, FrameHeader { seq: 41, ack: 40 });
        for bit in 0..framed.len() * 8 {
            let mut bad = framed.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut dec = FrameDecoder::new();
            dec.set_v2(true);
            dec.push(&bad);
            assert!(
                matches!(dec.next_frame2(), Err(WireError::Corrupt(_))),
                "flipping bit {bit} was not caught"
            );
        }
    }

    #[test]
    fn error_kinds_classify_retryability() {
        assert!(WireError::Corrupt("x".into()).is_retryable());
        assert!(WireError::TooLarge { len: usize::MAX }.is_retryable());
        assert!(WireError::Io("x".into()).is_retryable());
        assert!(!WireError::Codec("x".into()).is_retryable());
        let fatal: std::io::Error = WireError::Codec("bad".into()).into();
        assert!(io_error_is_fatal(&fatal));
        let soft: std::io::Error = WireError::Corrupt("bad".into()).into();
        assert!(!io_error_is_fatal(&soft));
        let plain = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        assert!(!io_error_is_fatal(&plain));
    }

    #[test]
    fn v1_garbage_payload_is_a_codec_error() {
        let framed = frame_v1(b"not json");
        assert!(matches!(decode::<u64>(&framed[4..]), Err(WireError::Codec(_))));
    }
}
