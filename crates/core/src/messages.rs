//! The typed, tagged messages exchanged between the LoadCoordinator and
//! the ParaSolvers — the protocol of Algorithms 1 and 2 of the paper
//! (`subproblem`, `solutionFound`, `status`, `startCollecting`,
//! `stopCollecting`, `terminated`, `termination`), extended with the
//! racing ramp-up control messages.

use crate::settings::SolverSettings;

/// A solver-independent subproblem plus the dual bound known for it.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SubproblemMsg<Sub> {
    /// The solver-independent subproblem description.
    pub sub: Sub,
    /// Dual bound (internal minimization sense) valid for this subtree.
    pub dual_bound: f64,
}

/// Every message of the protocol. `Sub`/`Sol` are the base solver's
/// solver-independent subproblem and solution types.
///
/// The enum derives serde so the *whole protocol* is wire-shippable:
/// the process transport ([`crate::process`]) moves exactly these
/// values as checksummed frames, while the thread transport moves
/// them in memory — same protocol, different carrier.
///
/// Every variant is *reliable* on every transport: sequenced, ringed
/// for replay across reconnects, and de-duplicated (see
/// [`crate::comm`] for the delivery-guarantee fine print). Only
/// transport-internal heartbeats — which never appear in this enum —
/// are fire-and-forget. [`Message::WorkerDied`] is synthesized locally
/// by the coordinator's transport rather than carried on the wire, and
/// is raised exactly once per rank.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum Message<Sub, Sol> {
    // ---- LoadCoordinator → ParaSolver --------------------------------
    /// Work assignment (tag `subproblem` in Algorithm 1): the subproblem,
    /// the current incumbent, and — during racing — the settings bundle.
    Subproblem {
        /// The subproblem to solve, with its known dual bound.
        sub: SubproblemMsg<Sub>,
        /// Current incumbent (solution, objective), if any.
        incumbent: Option<(Sol, f64)>,
        /// Racing-only parameter bundle for this solver.
        settings: Option<SolverSettings>,
    },
    /// A new incumbent found elsewhere.
    Incumbent {
        /// The improving solution.
        sol: Sol,
        /// Its objective (internal minimization sense).
        obj: f64,
    },
    /// Enter collect mode: periodically export heavy open subproblems.
    StartCollecting,
    /// Leave collect mode.
    StopCollecting,
    /// Abort the current subproblem (racing loser, time limit); the
    /// worker stays alive and reports `Completed { aborted: true }`.
    AbortSubproblem,
    /// Shut the worker down (tag `termination`).
    Terminate,

    // ---- ParaSolver → LoadCoordinator --------------------------------
    /// Tag `solutionFound`.
    SolutionFound {
        /// Reporting solver rank.
        rank: usize,
        /// The solution found.
        sol: Sol,
        /// Its objective (internal minimization sense).
        obj: f64,
    },
    /// Tag `status`: periodic progress report.
    Status {
        /// Reporting solver rank.
        rank: usize,
        /// Best dual bound over the rank's open nodes.
        dual_bound: f64,
        /// Open nodes inside the rank's base solver.
        open: usize,
        /// B&B nodes the rank processed so far in this subproblem.
        nodes: u64,
    },
    /// A collected (exported) open subproblem (tag `subproblem` upward).
    ExportedNode {
        /// Exporting solver rank.
        rank: usize,
        /// The open subproblem handed back to the coordinator.
        sub: SubproblemMsg<Sub>,
    },
    /// Tag `terminated`: the assigned subproblem is done (or aborted).
    Completed {
        /// Reporting solver rank.
        rank: usize,
        /// Dual bound proven for the finished subtree.
        dual_bound: f64,
        /// B&B nodes spent on the subproblem.
        nodes: u64,
        /// True when the subproblem was aborted, not exhausted.
        aborted: bool,
    },

    // ---- transport → LoadCoordinator ---------------------------------
    /// Synthesized by the communicator (never sent by a worker): the
    /// connection to `rank` dropped or its heartbeat went silent. The
    /// coordinator requeues whatever that rank had in flight and stops
    /// assigning to it. Only the distributed back-end produces this.
    WorkerDied {
        /// The rank whose transport died.
        rank: usize,
    },
}

impl<Sub, Sol> Message<Sub, Sol> {
    /// Short tag string (mirrors the paper's message tags; handy for
    /// logging and tests).
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Subproblem { .. } => "subproblem",
            Message::Incumbent { .. } => "incumbent",
            Message::StartCollecting => "startCollecting",
            Message::StopCollecting => "stopCollecting",
            Message::AbortSubproblem => "abortSubproblem",
            Message::Terminate => "termination",
            Message::SolutionFound { .. } => "solutionFound",
            Message::Status { .. } => "status",
            Message::ExportedNode { .. } => "subproblem^",
            Message::Completed { .. } => "terminated",
            Message::WorkerDied { .. } => "workerDied",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_paper_protocol() {
        let m: Message<u32, u32> = Message::StartCollecting;
        assert_eq!(m.tag(), "startCollecting");
        let m: Message<u32, u32> =
            Message::Completed { rank: 0, dual_bound: 0.0, nodes: 1, aborted: false };
        assert_eq!(m.tag(), "terminated");
    }
}
