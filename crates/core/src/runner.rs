//! The public entry points: spawn ParaSolvers, run the LoadCoordinator,
//! join, return results.
//!
//! [`solve_parallel`] runs `ug [base solver, ThreadComm]` — workers are
//! threads of this process. [`solve_parallel_distributed`] runs `ug
//! [base solver, ProcessComm]` — workers are spawned OS processes
//! hosting the base solver (see [`run_distributed_worker`] for their
//! half), connected over localhost TCP. Both drive the *same*
//! [`LoadCoordinator`]; only the transport handed to it differs.

use crate::checkpoint::Checkpoint;
use crate::comm::{thread_comm, LcComm, WorkerComm};
use crate::process::{connect_worker, ProcessCommConfig, ProcessListener};
use crate::settings::SolverSettings;
use crate::stats::UgStats;
use crate::supervisor::LoadCoordinator;
use crate::worker::{worker_loop, BaseSolver, SolverFactory};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::time::Duration;

/// Ramp-up strategy (§2.2).
#[derive(Clone, Debug)]
pub enum RampUp {
    /// Normal ramp-up: the root goes to one solver; collect mode spreads
    /// branched nodes as solvers become idle.
    Normal,
    /// Racing ramp-up: all solvers attack the root under different
    /// settings; a winner is chosen when the trigger fires.
    Racing {
        /// The settings bundles, assigned round-robin to ranks.
        settings: Vec<SolverSettings>,
        /// Fire the trigger after this much wall-clock time…
        time_trigger: f64,
        /// …or once the most promising solver reports at least this many
        /// open nodes.
        open_nodes_trigger: usize,
    },
}

/// Options of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelOptions {
    /// Number of ParaSolvers (threads).
    pub num_solvers: usize,
    /// Ramp-up strategy (normal spread or racing).
    pub ramp_up: RampUp,
    /// Wall-clock limit in seconds.
    pub time_limit: f64,
    /// Save a checkpoint here when the run stops unfinished (and
    /// periodically every `checkpoint_interval`).
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Seconds between periodic checkpoints (0 = only at shutdown).
    pub checkpoint_interval: f64,
    /// Resume from this checkpoint.
    pub restart_from: Option<String>,
    /// Desired size of the coordinator's subproblem pool per idle solver
    /// (collect-mode hysteresis).
    pub pool_target_per_solver: f64,
    /// Minimum seconds between a worker's status reports.
    pub status_interval: f64,
    /// Stop (like the time limit: abort, drain, checkpoint) once the
    /// total processed B&B nodes reach this count.
    pub node_limit: Option<u64>,
    /// External cancellation: when the flag flips to true the run stops
    /// through the same orderly shutdown path as the time limit.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Live telemetry wiring: an optional JSONL run journal and an
    /// optional progress callback. Disabled (and near-free) by default.
    pub telemetry: crate::telemetry::TelemetrySink,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            num_solvers: 2,
            ramp_up: RampUp::Normal,
            time_limit: f64::INFINITY,
            checkpoint_path: None,
            checkpoint_interval: 0.0,
            restart_from: None,
            pool_target_per_solver: 1.0,
            status_interval: 0.05,
            node_limit: None,
            cancel: None,
            telemetry: crate::telemetry::TelemetrySink::default(),
        }
    }
}

/// Result of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelResult<Sub, Sol> {
    /// Best solution with its internal-sense objective.
    pub solution: Option<(Sol, f64)>,
    /// Proven global dual bound (internal sense).
    pub dual_bound: f64,
    /// True when the search space was exhausted (optimality or
    /// infeasibility proven).
    pub solved: bool,
    /// Statistics of the run (Table 1-3 quantities).
    pub stats: UgStats,
    /// The final checkpoint (also written to disk when a path was set).
    pub final_checkpoint: Option<Checkpoint<Sub, Sol>>,
}

/// Runs the parallel solve: spawns `num_solvers` ParaSolver threads
/// around `factory`-built base solvers, coordinates them on `root`, and
/// returns the combined result.
pub fn solve_parallel<S: BaseSolver + 'static>(
    factory: SolverFactory<S>,
    root: S::Sub,
    options: ParallelOptions,
) -> ParallelResult<S::Sub, S::Sol> {
    solve_parallel_seeded(factory, root, None, options)
}

/// Like [`solve_parallel`], but seeds the coordinator with a known
/// feasible solution (internal-sense objective) before the run — the
/// paper's Table 3 workflow of re-running "from scratch with the best
/// solution", which then powers presolving, propagation and heuristics
/// in every ParaSolver.
pub fn solve_parallel_seeded<S: BaseSolver + 'static>(
    factory: SolverFactory<S>,
    root: S::Sub,
    incumbent: Option<(S::Sol, f64)>,
    options: ParallelOptions,
) -> ParallelResult<S::Sub, S::Sol> {
    let n = options.num_solvers.max(1);
    let (lc, workers) = thread_comm::<S::Sub, S::Sol>(n);
    let status_interval = Duration::from_secs_f64(options.status_interval);
    let mut handles = Vec::with_capacity(n);
    for w in workers {
        let f = factory.clone();
        handles.push(std::thread::spawn(move || worker_loop(w, f, status_interval)));
    }
    let mut coordinator = LoadCoordinator::new(lc, options, root);
    if let Some((sol, obj)) = incumbent {
        coordinator.set_initial_incumbent(sol, obj);
    }
    let result = coordinator.run();
    for h in handles {
        let _ = h.join();
    }
    result
}

/// How to launch and talk to distributed workers.
#[derive(Clone, Debug)]
pub struct DistributedOptions {
    /// Worker executable followed by its fixed leading arguments (the
    /// problem selector etc.). The runner appends `--connect <addr>
    /// --rank <i> --status-interval <s>` plus the transport tuning
    /// (`--heartbeat-ms --handshake-ms --liveness-ms --reconnect-ms`)
    /// per spawned worker, so both ends share one [`ProcessCommConfig`].
    pub worker_command: Vec<String>,
    /// Coordinator listen address; `"127.0.0.1:0"` lets the OS pick a
    /// free port.
    pub listen_addr: String,
    /// Transport tuning (handshake/liveness/heartbeat).
    pub comm: ProcessCommConfig,
}

impl Default for DistributedOptions {
    fn default() -> Self {
        DistributedOptions {
            worker_command: Vec::new(),
            listen_addr: "127.0.0.1:0".into(),
            comm: ProcessCommConfig::default(),
        }
    }
}

/// Runs the parallel solve with `num_solvers` *worker processes*
/// spawned from `dist.worker_command` — `ug [base solver,
/// ProcessComm]`. The subproblem and every protocol message cross
/// process boundaries as wire frames; the coordinator logic is
/// identical to the threaded run. Workers are reaped (waited for, then
/// killed if unresponsive) before this returns.
pub fn solve_parallel_distributed<Sub, Sol>(
    root: Sub,
    options: ParallelOptions,
    dist: DistributedOptions,
) -> std::io::Result<ParallelResult<Sub, Sol>>
where
    Sub: Clone + Send + Serialize + DeserializeOwned + 'static,
    Sol: Clone + Send + Serialize + DeserializeOwned + 'static,
{
    let n = options.num_solvers.max(1);
    let (program, fixed_args) = dist.worker_command.split_first().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty worker_command")
    })?;
    let listener = ProcessListener::bind(&dist.listen_addr)?;
    let addr = listener.local_addr()?.to_string();
    let mut children = ChildReaper(Vec::with_capacity(n));
    for rank in 0..n {
        let child = std::process::Command::new(program)
            .args(fixed_args)
            .arg("--connect")
            .arg(&addr)
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--status-interval")
            .arg(options.status_interval.to_string())
            .arg("--heartbeat-ms")
            .arg(dist.comm.heartbeat_interval.as_millis().to_string())
            .arg("--handshake-ms")
            .arg(dist.comm.handshake_timeout.as_millis().to_string())
            .arg("--liveness-ms")
            .arg(dist.comm.liveness_timeout.as_millis().to_string())
            .arg("--reconnect-ms")
            .arg(dist.comm.reconnect_deadline.as_millis().to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .spawn()?;
        children.0.push(child);
    }

    let lc = LcComm::Process(listener.accept_workers::<Sub, Sol>(n, &dist.comm)?);
    let mut coordinator = LoadCoordinator::new(lc, options, root);
    let result = coordinator.run();
    children.reap();
    Ok(result)
}

/// Drop guard around the spawned worker fleet: any exit path that skips
/// the graceful [`ChildReaper::reap`] — a `?` during spawn or handshake,
/// or a panic inside the coordinator — still kills and waits on every
/// child, so no `ugd-worker` can outlive its run.
struct ChildReaper(Vec<std::process::Child>);

impl ChildReaper {
    /// Graceful reap after `Terminate` was broadcast: bounded wait for
    /// voluntary exits, then kill stragglers.
    fn reap(mut self) {
        reap_children(&mut self.0);
        self.0.clear();
    }
}

impl Drop for ChildReaper {
    fn drop(&mut self) {
        // Non-graceful path: nobody told the workers to terminate, so
        // waiting first would only stall the error/panic propagation —
        // kill immediately.
        for c in self.0.iter_mut() {
            if !matches!(c.try_wait(), Ok(Some(_))) {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
}

/// Waits (bounded) for worker processes to exit after `Terminate`, then
/// kills stragglers so a hung worker can never wedge the coordinator.
fn reap_children(children: &mut [std::process::Child]) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let all_done = children.iter_mut().all(|c| matches!(c.try_wait(), Ok(Some(_))));
        if all_done {
            return;
        }
        if std::time::Instant::now() >= deadline {
            for c in children.iter_mut() {
                if !matches!(c.try_wait(), Ok(Some(_))) {
                    let _ = c.kill();
                    let _ = c.wait();
                }
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The worker-process half of a distributed run: connect to the
/// coordinator at `addr`, then serve subproblems with `factory`-built
/// base solvers until `Terminate`. This is what a worker binary (e.g.
/// `ugd-worker`) calls after parsing its command line.
pub fn run_distributed_worker<S: BaseSolver + 'static>(
    addr: &str,
    rank_hint: Option<usize>,
    factory: SolverFactory<S>,
    status_interval: Duration,
    config: &ProcessCommConfig,
) -> std::io::Result<()> {
    let comm = WorkerComm::Process(connect_worker::<S::Sub, S::Sol>(addr, rank_hint, config)?);
    worker_loop(comm, factory, status_interval);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = ParallelOptions::default();
        assert_eq!(o.num_solvers, 2);
        assert!(matches!(o.ramp_up, RampUp::Normal));
        assert!(o.time_limit.is_infinite());
    }
}
