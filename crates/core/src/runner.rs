//! The public entry point: spawn ParaSolvers, run the LoadCoordinator,
//! join, return results — `ug [base solver, ThreadComm]` in the paper's
//! naming scheme.

use crate::checkpoint::Checkpoint;
use crate::comm::thread_comm;
use crate::settings::SolverSettings;
use crate::stats::UgStats;
use crate::supervisor::LoadCoordinator;
use crate::worker::{worker_loop, BaseSolver, SolverFactory};
use std::time::Duration;

/// Ramp-up strategy (§2.2).
#[derive(Clone, Debug)]
pub enum RampUp {
    /// Normal ramp-up: the root goes to one solver; collect mode spreads
    /// branched nodes as solvers become idle.
    Normal,
    /// Racing ramp-up: all solvers attack the root under different
    /// settings; a winner is chosen when the trigger fires.
    Racing {
        /// The settings bundles, assigned round-robin to ranks.
        settings: Vec<SolverSettings>,
        /// Fire the trigger after this much wall-clock time…
        time_trigger: f64,
        /// …or once the most promising solver reports at least this many
        /// open nodes.
        open_nodes_trigger: usize,
    },
}

/// Options of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelOptions {
    /// Number of ParaSolvers (threads).
    pub num_solvers: usize,
    pub ramp_up: RampUp,
    /// Wall-clock limit in seconds.
    pub time_limit: f64,
    /// Save a checkpoint here when the run stops unfinished (and
    /// periodically every `checkpoint_interval`).
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Seconds between periodic checkpoints (0 = only at shutdown).
    pub checkpoint_interval: f64,
    /// Resume from this checkpoint.
    pub restart_from: Option<String>,
    /// Desired size of the coordinator's subproblem pool per idle solver
    /// (collect-mode hysteresis).
    pub pool_target_per_solver: f64,
    /// Minimum seconds between a worker's status reports.
    pub status_interval: f64,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            num_solvers: 2,
            ramp_up: RampUp::Normal,
            time_limit: f64::INFINITY,
            checkpoint_path: None,
            checkpoint_interval: 0.0,
            restart_from: None,
            pool_target_per_solver: 1.0,
            status_interval: 0.05,
        }
    }
}

/// Result of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelResult<Sub, Sol> {
    /// Best solution with its internal-sense objective.
    pub solution: Option<(Sol, f64)>,
    /// Proven global dual bound (internal sense).
    pub dual_bound: f64,
    /// True when the search space was exhausted (optimality or
    /// infeasibility proven).
    pub solved: bool,
    pub stats: UgStats,
    /// The final checkpoint (also written to disk when a path was set).
    pub final_checkpoint: Option<Checkpoint<Sub, Sol>>,
}

/// Runs the parallel solve: spawns `num_solvers` ParaSolver threads
/// around `factory`-built base solvers, coordinates them on `root`, and
/// returns the combined result.
pub fn solve_parallel<S: BaseSolver + 'static>(
    factory: SolverFactory<S>,
    root: S::Sub,
    options: ParallelOptions,
) -> ParallelResult<S::Sub, S::Sol> {
    solve_parallel_seeded(factory, root, None, options)
}

/// Like [`solve_parallel`], but seeds the coordinator with a known
/// feasible solution (internal-sense objective) before the run — the
/// paper's Table 3 workflow of re-running "from scratch with the best
/// solution", which then powers presolving, propagation and heuristics
/// in every ParaSolver.
pub fn solve_parallel_seeded<S: BaseSolver + 'static>(
    factory: SolverFactory<S>,
    root: S::Sub,
    incumbent: Option<(S::Sol, f64)>,
    options: ParallelOptions,
) -> ParallelResult<S::Sub, S::Sol> {
    let n = options.num_solvers.max(1);
    let (lc, workers) = thread_comm::<S::Sub, S::Sol>(n);
    let status_interval = Duration::from_secs_f64(options.status_interval);
    let mut handles = Vec::with_capacity(n);
    for w in workers {
        let f = factory.clone();
        handles.push(std::thread::spawn(move || worker_loop(w, f, status_interval)));
    }
    let mut coordinator = LoadCoordinator::new(lc, options, root);
    if let Some((sol, obj)) = incumbent {
        coordinator.set_initial_incumbent(sol, obj);
    }
    let result = coordinator.run();
    for h in handles {
        let _ = h.join();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = ParallelOptions::default();
        assert_eq!(o.num_solvers, 2);
        assert!(matches!(o.ramp_up, RampUp::Normal));
        assert!(o.time_limit.is_infinite());
    }
}
