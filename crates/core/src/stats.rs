//! Run statistics — exactly the quantities the paper's tables report:
//! idle ratio and transferred nodes (Table 2/3), maximum simultaneously
//! active solvers and the first time that maximum was reached (Table 1),
//! node counts, bounds and gap.

/// Statistics of one parallel run.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UgStats {
    /// Wall-clock seconds of the run.
    pub wall_time: f64,
    /// Subproblems transferred LoadCoordinator → ParaSolvers
    /// ("Trans." in Tables 2/3).
    pub transferred: u64,
    /// Subproblems collected from solvers (load balancing volume).
    pub collected: u64,
    /// Total B&B nodes processed across all solvers.
    pub nodes_total: u64,
    /// Open nodes left in the coordinator queue + assigned-but-unfinished
    /// subtree roots when the run stopped ("Open nodes").
    pub open_nodes: u64,
    /// Aggregate idle ratio over all ParaSolvers in percent
    /// ("Idle (%)").
    pub idle_percent: f64,
    /// Maximum number of simultaneously active solvers ("max # solvers").
    pub max_active: usize,
    /// First wall-clock second at which `max_active` was reached
    /// ("first max active time").
    pub first_max_active_time: f64,
    /// Final primal bound (internal sense; +inf when no solution).
    pub primal_bound: f64,
    /// Final dual bound (internal sense).
    pub dual_bound: f64,
    /// Winner index of the racing ramp-up, if racing ran and survived
    /// past the trigger (Figure 1's statistic).
    pub racing_winner: Option<usize>,
    /// Number of improving incumbents the coordinator saw.
    pub incumbents_seen: u64,
    /// Workers lost mid-run (distributed transport only): their
    /// in-flight subproblems were requeued and solving continued on the
    /// survivors.
    pub workers_died: u64,
    /// Which run of a restart chain this was (1-based; run `1.k` in
    /// Table 2). 1 unless the run resumed from a checkpoint.
    pub run_index: u32,
    /// Cumulative B&B nodes across the whole restart chain, i.e.
    /// `nodes_total` of this run plus every earlier run's contribution
    /// carried through the checkpoint. Equals `nodes_total` for run 1.
    pub nodes_so_far: u64,
    /// Cumulative wall-clock seconds across the chain (ditto).
    pub wall_time_so_far: f64,
}

impl Default for UgStats {
    fn default() -> Self {
        UgStats {
            wall_time: 0.0,
            transferred: 0,
            collected: 0,
            nodes_total: 0,
            open_nodes: 0,
            idle_percent: 0.0,
            max_active: 0,
            first_max_active_time: 0.0,
            primal_bound: f64::INFINITY,
            dual_bound: f64::NEG_INFINITY,
            racing_winner: None,
            incumbents_seen: 0,
            workers_died: 0,
            run_index: 1,
            nodes_so_far: 0,
            wall_time_so_far: 0.0,
        }
    }
}

impl UgStats {
    /// Relative gap in percent, as in Table 2 (`0` when closed).
    pub fn gap_percent(&self) -> f64 {
        gap_percent(self.primal_bound, self.dual_bound)
    }
}

/// Relative gap in percent between a primal and a dual bound (internal
/// minimization sense), Table 2 convention — also used for in-flight
/// snapshots before the final statistics exist.
pub fn gap_percent(primal_bound: f64, dual_bound: f64) -> f64 {
    if !primal_bound.is_finite() || !dual_bound.is_finite() {
        return f64::INFINITY;
    }
    ((primal_bound - dual_bound).max(0.0) / primal_bound.abs().max(1e-9)) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_matches_table2_convention() {
        let mut s = UgStats { primal_bound: 233.0, dual_bound: 229.1728, ..Default::default() };
        assert!((s.gap_percent() - 1.6426).abs() < 1e-3);
        s.dual_bound = 233.0;
        assert_eq!(s.gap_percent(), 0.0);
        s.dual_bound = f64::NEG_INFINITY;
        assert!(s.gap_percent().is_infinite());
    }
}
