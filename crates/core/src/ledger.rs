//! The durable job ledger: what makes `ugd-server` crash-safe.
//!
//! The paper's long runs are restart *chains* (§2.2, Table 2: run 1.1
//! stops at the cluster's wall-clock limit with 271,781 open nodes; run
//! 1.2 resumes from the 18 primitive nodes the checkpoint kept). A job
//! service that serves such runs must survive its own crashes the same
//! way: no accepted job may be lost, and an interrupted job must resume
//! from its latest checkpoint rather than from scratch.
//!
//! The ledger is a directory (`--state-dir`) with two kinds of
//! artifacts, both written with the [`crate::checkpoint::write_atomic`]
//! temp-file + fsync + rename discipline:
//!
//! * `jobs/job-<id>.json` — the **write-ahead record** of one accepted
//!   job: its full [`JobSpec`] (instance, root, priority, limits). It is
//!   durable *before* the server acknowledges the submission, and
//!   removed only when the job reaches a terminal state — so the set of
//!   files in `jobs/` is exactly the set of jobs the server still owes
//!   an answer for.
//! * `checkpoints/job-<id>.json` — the latest primitive-node
//!   [`Checkpoint`](crate::Checkpoint) of a *running* job, written
//!   periodically by its coordinator through
//!   [`ParallelOptions::checkpoint_path`](crate::ParallelOptions).
//!
//! Recovery ([`JobLedger::recover`]) intersects the two: a job record
//! without a checkpoint is requeued as submitted (run `1.1`); one with
//! a checkpoint resumes from it with the chain's cumulative statistics
//! (`run_index`, `nodes_so_far`, `wall_time_so_far`) carried over. A
//! record that cannot be parsed — a torn write from a crash mid-rename,
//! or manual tampering — is *skipped and reported*, never fatal: one
//! bad artifact must not take the whole service down with it.

use crate::server::JobSpec;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};

/// One write-ahead record of the ledger: a job id with everything
/// needed to re-run the submission after a crash.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LedgerRecord<Inst, Sub> {
    /// The job id the server assigned (ids survive restarts).
    pub job: u64,
    /// The submission, verbatim: instance, root, priority and limits.
    pub spec: JobSpec<Inst, Sub>,
}

/// A job reconstructed by the recovery pass.
#[derive(Clone, Debug)]
pub struct RecoveredJob<Inst, Sub> {
    /// The job id from the ledger record (reused, so watchers and
    /// `ugd status` keep naming the same job across the restart).
    pub job: u64,
    /// The original submission.
    pub spec: JobSpec<Inst, Sub>,
    /// The latest checkpoint of an interrupted run, as the JSON string
    /// [`ParallelOptions::restart_from`](crate::ParallelOptions)
    /// accepts; `None` when the job never ran long enough to checkpoint
    /// (it restarts from scratch).
    pub checkpoint: Option<String>,
    /// The run index the *next* run of this job will report: 1 for a
    /// requeued job, `k + 1` when resuming a checkpoint of run `k`
    /// (Table 2's run `1.k` numbering).
    pub run_index: u32,
    /// Cumulative B&B nodes across the chain so far (0 when requeued).
    pub nodes_so_far: u64,
}

/// Everything [`JobLedger::recover`] found in a state directory.
#[derive(Clone, Debug)]
pub struct Recovery<Inst, Sub> {
    /// Recovered jobs in ascending id order (the pre-crash FIFO order).
    pub jobs: Vec<RecoveredJob<Inst, Sub>>,
    /// The next job id to assign: one past the highest id ever
    /// recorded, so recovered and new jobs never collide.
    pub next_job: u64,
    /// Ledger files that could not be parsed (torn or corrupt); they
    /// were left on disk for inspection but will not run.
    pub skipped: Vec<PathBuf>,
}

/// The durable job ledger of one server (see the module docs).
#[derive(Debug)]
pub struct JobLedger {
    jobs_dir: PathBuf,
    checkpoints_dir: PathBuf,
}

impl JobLedger {
    /// Opens (creating as needed) the ledger under `state_dir`.
    pub fn open(state_dir: &Path) -> io::Result<Self> {
        let jobs_dir = state_dir.join("jobs");
        let checkpoints_dir = state_dir.join("checkpoints");
        std::fs::create_dir_all(&jobs_dir)?;
        std::fs::create_dir_all(&checkpoints_dir)?;
        Ok(JobLedger { jobs_dir, checkpoints_dir })
    }

    fn record_path(&self, job: u64) -> PathBuf {
        self.jobs_dir.join(format!("job-{job}.json"))
    }

    /// Where the running job's coordinator writes its periodic
    /// checkpoints (handed to
    /// [`ParallelOptions::checkpoint_path`](crate::ParallelOptions)).
    pub fn checkpoint_path(&self, job: u64) -> PathBuf {
        self.checkpoints_dir.join(format!("job-{job}.json"))
    }

    /// Write-ahead-logs a submission: the record is fsync'd and
    /// atomically in place when this returns, so the server may
    /// acknowledge the client — the job can no longer be lost.
    pub fn record_submitted<Inst, Sub>(&self, job: u64, spec: &JobSpec<Inst, Sub>) -> io::Result<()>
    where
        Inst: Serialize,
        Sub: Serialize,
    {
        // Serialized through a Value so the borrowed spec need not be
        // cloned; the shape must match [`LedgerRecord`]'s derive.
        let record = serde_json::json!({ "job": job, "spec": spec });
        let data = serde_json::to_vec(&record)?;
        crate::checkpoint::write_atomic(&self.record_path(job), &data)
    }

    /// Retires a job that reached a terminal state: its record and
    /// checkpoint are removed (and the removals fsync'd), so a later
    /// recovery pass will not resurrect it. Idempotent.
    pub fn record_finished(&self, job: u64) -> io::Result<()> {
        let record = self.record_path(job);
        let checkpoint = self.checkpoint_path(job);
        for path in [&record, &checkpoint] {
            match std::fs::remove_file(path) {
                Ok(()) => crate::checkpoint::sync_parent_dir(path),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The startup recovery pass: reads every job record, pairs it with
    /// its latest checkpoint if one exists, and returns the jobs in
    /// submission order. Unparseable records or checkpoints degrade
    /// gracefully (a bad checkpoint requeues the job from scratch; a
    /// bad record is skipped and reported in [`Recovery::skipped`]).
    pub fn recover<Inst, Sub>(&self) -> io::Result<Recovery<Inst, Sub>>
    where
        Inst: DeserializeOwned,
        Sub: DeserializeOwned,
    {
        let mut jobs = Vec::new();
        let mut skipped = Vec::new();
        let mut next_job = 0u64;
        for entry in std::fs::read_dir(&self.jobs_dir)? {
            let path = entry?.path();
            // Ignore non-record files, including a `.tmp` orphaned by a
            // crash between write and rename (its job either has a
            // complete older record or was never acknowledged).
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let record: LedgerRecord<Inst, Sub> = match std::fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|data| serde_json::from_slice(&data).map_err(|e| e.to_string()))
            {
                Ok(r) => r,
                Err(_) => {
                    skipped.push(path);
                    continue;
                }
            };
            next_job = next_job.max(record.job + 1);
            let (checkpoint, run_index, nodes_so_far) =
                match std::fs::read_to_string(self.checkpoint_path(record.job)) {
                    Ok(json) => match checkpoint_meta(&json) {
                        // Resuming run k's checkpoint makes the next run k+1.
                        Some((run_index, nodes)) => (Some(json), run_index + 1, nodes),
                        None => (None, 1, 0), // torn checkpoint: from scratch
                    },
                    // No local checkpoint: a spec that itself carries one
                    // (a job handed over mid-chain by a gateway failover
                    // or drain, interrupted again before this shard's
                    // first periodic save) resumes from that instead.
                    Err(_) => match &record.spec.restart_from {
                        Some(json) => match checkpoint_meta(json) {
                            Some((run_index, nodes)) => (Some(json.clone()), run_index + 1, nodes),
                            None => (None, 1, 0),
                        },
                        None => (None, 1, 0),
                    },
                };
            jobs.push(RecoveredJob {
                job: record.job,
                spec: record.spec,
                checkpoint,
                run_index,
                nodes_so_far,
            });
        }
        jobs.sort_by_key(|j| j.job);
        Ok(Recovery { jobs, next_job, skipped })
    }
}

/// Extracts `(run_index, nodes_so_far)` from a checkpoint's JSON
/// without knowing its `Sub`/`Sol` types (the ledger is generic; the
/// full checkpoint is deserialized later by the coordinator). Returns
/// `None` for torn or non-checkpoint JSON. Public because the server's
/// submit path and the gateway's failover path both need the chain
/// position of a `restart_from` payload without its full types.
pub fn checkpoint_meta(json: &str) -> Option<(u32, u64)> {
    let v: serde_json::Value = serde_json::from_str(json).ok()?;
    let run_index = v.get("run_index")?.as_u64()? as u32;
    let nodes = v.get("nodes_so_far")?.as_u64()?;
    Some((run_index, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::messages::SubproblemMsg;

    fn scratch_dir(label: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ugrs-ledger-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(name: &str) -> JobSpec<String, u32> {
        JobSpec { priority: 3, ..JobSpec::new(name, "instance".to_string(), 7) }
    }

    #[test]
    fn submit_recover_finish_lifecycle() {
        let dir = scratch_dir("lifecycle");
        let ledger = JobLedger::open(&dir).unwrap();
        ledger.record_submitted(0, &spec("a")).unwrap();
        ledger.record_submitted(1, &spec("b")).unwrap();

        let rec: Recovery<String, u32> = ledger.recover().unwrap();
        assert_eq!(rec.jobs.len(), 2);
        assert_eq!(rec.next_job, 2);
        assert!(rec.skipped.is_empty());
        assert_eq!(rec.jobs[0].job, 0);
        assert_eq!(rec.jobs[0].spec.name, "a");
        assert_eq!(rec.jobs[0].spec.priority, 3);
        assert_eq!(rec.jobs[0].run_index, 1, "no checkpoint: requeued from scratch");
        assert!(rec.jobs[0].checkpoint.is_none());

        ledger.record_finished(0).unwrap();
        ledger.record_finished(0).unwrap(); // idempotent
        let rec: Recovery<String, u32> = ledger.recover().unwrap();
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].job, 1);
        assert_eq!(rec.next_job, 2, "retiring a job must not reuse its id");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_resumes_from_checkpoint_with_chain_stats() {
        let dir = scratch_dir("resume");
        let ledger = JobLedger::open(&dir).unwrap();
        ledger.record_submitted(4, &spec("chain")).unwrap();
        let cp = Checkpoint::<u32, u32> {
            queue: vec![SubproblemMsg { sub: 11, dual_bound: 2.0 }],
            assigned: vec![],
            incumbent: Some((9, 5.0)),
            dual_bound: 2.0,
            nodes_so_far: 1234,
            transferred_so_far: 5,
            wall_time_so_far: 60.0,
            run_index: 2,
        };
        cp.save(&ledger.checkpoint_path(4)).unwrap();

        let rec: Recovery<String, u32> = ledger.recover().unwrap();
        assert_eq!(rec.jobs.len(), 1);
        let j = &rec.jobs[0];
        assert_eq!(j.run_index, 3, "resuming run 2's checkpoint starts run 3");
        assert_eq!(j.nodes_so_far, 1234);
        let json = j.checkpoint.as_ref().expect("checkpoint JSON carried");
        let back: Checkpoint<u32, u32> = serde_json::from_str(json).unwrap();
        assert_eq!(back.incumbent, Some((9, 5.0)));
        assert_eq!(rec.next_job, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn half_written_submission_record_is_skipped_not_fatal() {
        let dir = scratch_dir("torn");
        let ledger = JobLedger::open(&dir).unwrap();
        ledger.record_submitted(0, &spec("good")).unwrap();
        // A torn record: a valid record's prefix, as a crash that beat
        // the atomic-write discipline (or a corrupted disk) would leave.
        let good = std::fs::read(dir.join("jobs/job-0.json")).unwrap();
        std::fs::write(dir.join("jobs/job-1.json"), &good[..good.len() / 2]).unwrap();
        // And an orphaned temp file from a crash before the rename.
        std::fs::write(dir.join("jobs/job-2.tmp"), b"{\"job\":2").unwrap();

        let rec: Recovery<String, u32> = ledger.recover().unwrap();
        assert_eq!(rec.jobs.len(), 1, "only the intact record runs");
        assert_eq!(rec.jobs[0].spec.name, "good");
        assert_eq!(rec.skipped.len(), 1, "the torn .json is reported");
        assert!(rec.skipped[0].ends_with("job-1.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_checkpoint_degrades_to_requeue() {
        let dir = scratch_dir("torn-cp");
        let ledger = JobLedger::open(&dir).unwrap();
        ledger.record_submitted(0, &spec("j")).unwrap();
        std::fs::write(ledger.checkpoint_path(0), b"{\"queue\":[{\"sub\"").unwrap();
        let rec: Recovery<String, u32> = ledger.recover().unwrap();
        assert_eq!(rec.jobs.len(), 1);
        assert!(rec.jobs[0].checkpoint.is_none(), "torn checkpoint: restart from scratch");
        assert_eq!(rec.jobs[0].run_index, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
