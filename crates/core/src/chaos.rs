//! Deterministic fault injection for the process transport.
//!
//! A [`FaultPlan`] is a *seeded* schedule of transport faults: given
//! the same seed and [`ChaosProfile`], the same sequence of outgoing
//! frames hits the same delays, drops, duplications, corruptions,
//! partitions and kills — so a failing run is reproducible from the
//! one-line JSON the plan serializes to (`--chaos-seed`/
//! `--chaos-profile` on `ugd-worker`/`ugd-server`, see the README
//! chaos runbook). The injector sits on the worker's frame-write path
//! inside [`crate::process`]; every outgoing frame (heartbeats
//! included) advances the schedule, which gives the plan a steady
//! clock even while the solver is quiet.
//!
//! Faults model what real networks do to a TCP connection:
//!
//! * **Delay** — the frame is written late (latency spike).
//! * **Drop** — the frame is discarded *and the connection is torn
//!   down*, like a host crashing before the send buffer is flushed.
//!   (TCP never silently loses a frame mid-stream; loss always comes
//!   with a broken connection. The frame sits in the retransmit ring
//!   and is replayed after the reconnect.)
//! * **Duplicate** — the frame is written twice; the receiver's
//!   sequence check must suppress the copy.
//! * **Corrupt** — one bit of the frame is flipped before writing;
//!   the receiver's CRC must catch it and drop the connection.
//! * **Partition** — all writes (heartbeats included) stop for a
//!   while; the connection is torn down when the partition lifts (or
//!   earlier, by the coordinator's liveness sweep) and the resume
//!   replays the suppressed frames — never leaving a sequence gap.
//! * **Kill** — the worker process exits immediately (exit code 137,
//!   as if SIGKILLed): exercises the `WorkerDied` → requeue path.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What the injector decided for one outgoing frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Write the frame normally.
    Pass,
    /// Sleep this long, then write.
    Delay(Duration),
    /// Discard the frame and break the connection.
    Drop,
    /// Write the frame twice.
    Duplicate,
    /// Flip the given bit (modulo frame size) before writing.
    Corrupt {
        /// Pseudo-random bit index; the writer reduces it mod the
        /// frame's bit length.
        bit: u64,
    },
    /// Suppress all writes for this long.
    Partition(Duration),
    /// Exit the process immediately.
    Kill,
}

/// Per-frame fault probabilities and magnitudes. All probabilities
/// are evaluated per outgoing frame, in the order corrupt → drop →
/// duplicate → delay → partition (at most one fault per frame).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ChaosProfile {
    /// Probability of corrupting a frame.
    pub corrupt_p: f64,
    /// Probability of dropping a frame (and breaking the connection).
    pub drop_p: f64,
    /// Probability of duplicating a frame.
    pub dup_p: f64,
    /// Probability of delaying a frame.
    pub delay_p: f64,
    /// Delay length in milliseconds.
    pub delay_ms: u64,
    /// Probability of starting a write partition.
    pub partition_p: f64,
    /// Partition length in milliseconds.
    pub partition_ms: u64,
    /// Kill the process when this many frames have been written.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kill_after_frames: Option<u64>,
}

impl ChaosProfile {
    /// A profile with no faults at all.
    pub fn none() -> Self {
        ChaosProfile {
            corrupt_p: 0.0,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_ms: 0,
            partition_p: 0.0,
            partition_ms: 0,
            kill_after_frames: None,
        }
    }

    /// Named presets, also accepted by `--chaos-profile`:
    /// `flaky` (drops + corruption + duplicates + small delays, the
    /// default chaos-test profile), `corrupt` (corruption only),
    /// `drop` (connection breaks only), `partition` (write outages),
    /// `mayhem` (everything, aggressively).
    pub fn named(name: &str) -> Option<Self> {
        let base = ChaosProfile::none();
        match name {
            "flaky" => Some(ChaosProfile {
                corrupt_p: 0.02,
                drop_p: 0.012,
                dup_p: 0.05,
                delay_p: 0.05,
                delay_ms: 20,
                ..base
            }),
            "corrupt" => Some(ChaosProfile { corrupt_p: 0.05, ..base }),
            "drop" => Some(ChaosProfile { drop_p: 0.03, ..base }),
            "partition" => Some(ChaosProfile { partition_p: 0.01, partition_ms: 400, ..base }),
            "mayhem" => Some(ChaosProfile {
                corrupt_p: 0.05,
                drop_p: 0.03,
                dup_p: 0.1,
                delay_p: 0.1,
                delay_ms: 40,
                partition_p: 0.005,
                partition_ms: 300,
                ..base
            }),
            _ => None,
        }
    }

    /// Parses a `--chaos-profile` value: a preset name or inline JSON.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(p) = ChaosProfile::named(s) {
            return Ok(p);
        }
        serde_json::from_str(s).map_err(|e| {
            format!("--chaos-profile: not a preset (flaky/corrupt/drop/partition/mayhem) and not valid JSON: {e}")
        })
    }
}

/// A complete, serializable fault schedule: seed + profile. The JSON
/// form (`Display`) is the one-line repro an assertion message should
/// carry; [`FaultPlan::injector`] turns it into the stateful
/// per-frame decider.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; equal seeds give equal schedules.
    pub seed: u64,
    /// Fault probabilities/magnitudes.
    pub profile: ChaosProfile,
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", serde_json::to_string(self).expect("plan serializes"))
    }
}

impl FaultPlan {
    /// Builds the plan for a seed and profile.
    pub fn new(seed: u64, profile: ChaosProfile) -> Self {
        FaultPlan { seed, profile }
    }

    /// The stateful per-frame fault decider for this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector { rng: SplitMix64::new(self.seed), plan: self.clone(), frame: 0 }
    }

    /// The first `n` scheduled non-`Pass` events, as `(frame_index,
    /// action)` — for logs and failure messages.
    pub fn events(&self, n: usize, horizon: u64) -> Vec<(u64, FaultAction)> {
        let mut inj = self.injector();
        let mut out = Vec::new();
        for i in 0..horizon {
            let a = inj.on_frame();
            if a != FaultAction::Pass {
                out.push((i, a));
                if out.len() >= n {
                    break;
                }
            }
        }
        out
    }
}

/// `ChaosConfig` is the transport-level knob: `None` everywhere in
/// production, `Some(plan)` only under test/benchmark harnesses. (An
/// alias so config structs read as intent rather than mechanism.)
pub type ChaosConfig = FaultPlan;

/// Walks a [`FaultPlan`]'s schedule one outgoing frame at a time.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
    plan: FaultPlan,
    frame: u64,
}

impl FaultInjector {
    /// Decides the fault (if any) for the next outgoing frame.
    pub fn on_frame(&mut self) -> FaultAction {
        let p = &self.plan.profile;
        self.frame += 1;
        if let Some(k) = p.kill_after_frames {
            if self.frame > k {
                return FaultAction::Kill;
            }
        }
        // One draw decides the fault class (at most one per frame),
        // a second supplies its magnitude — so adding probability to
        // one class never perturbs another class's schedule position.
        let roll = self.rng.next_f64();
        let magnitude = self.rng.next_u64();
        let mut edge = p.corrupt_p;
        if roll < edge {
            return FaultAction::Corrupt { bit: magnitude };
        }
        edge += p.drop_p;
        if roll < edge {
            return FaultAction::Drop;
        }
        edge += p.dup_p;
        if roll < edge {
            return FaultAction::Duplicate;
        }
        edge += p.delay_p;
        if roll < edge {
            return FaultAction::Delay(Duration::from_millis(p.delay_ms));
        }
        edge += p.partition_p;
        if roll < edge {
            return FaultAction::Partition(Duration::from_millis(p.partition_ms));
        }
        FaultAction::Pass
    }

    /// Frames seen so far.
    pub fn frames(&self) -> u64 {
        self.frame
    }

    /// The plan this injector walks (for repro messages).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

/// SplitMix64 (Steele, Lea & Flood): tiny, seedable, and good enough
/// for fault scheduling — chosen over the vendored `rand` so the
/// schedule is bit-identical on every platform and toolchain forever
/// (a chaos seed in a bug report must never rot).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::new(42, ChaosProfile::named("mayhem").unwrap());
        let a: Vec<_> = {
            let mut i = plan.injector();
            (0..500).map(|_| i.on_frame()).collect()
        };
        let b: Vec<_> = {
            let mut i = plan.injector();
            (0..500).map(|_| i.on_frame()).collect()
        };
        assert_eq!(a, b);
        let other: Vec<_> = {
            let mut i = FaultPlan::new(43, plan.profile.clone()).injector();
            (0..500).map(|_| i.on_frame()).collect()
        };
        assert_ne!(a, other, "different seeds should give different schedules");
    }

    #[test]
    fn plan_round_trips_as_one_line_json() {
        let plan = FaultPlan::new(1337, ChaosProfile::named("flaky").unwrap());
        let line = plan.to_string();
        assert!(!line.contains('\n'));
        let back: FaultPlan = serde_json::from_str(&line).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn presets_parse_and_garbage_does_not() {
        for name in ["flaky", "corrupt", "drop", "partition", "mayhem"] {
            ChaosProfile::parse(name).unwrap();
        }
        assert!(ChaosProfile::parse("no-such-profile").is_err());
        let json = serde_json::to_string(&ChaosProfile::named("flaky").unwrap()).unwrap();
        assert_eq!(ChaosProfile::parse(&json).unwrap(), ChaosProfile::named("flaky").unwrap());
    }

    #[test]
    fn kill_fires_after_the_configured_frame() {
        let profile = ChaosProfile { kill_after_frames: Some(3), ..ChaosProfile::none() };
        let mut inj = FaultPlan::new(7, profile).injector();
        assert_eq!(inj.on_frame(), FaultAction::Pass);
        assert_eq!(inj.on_frame(), FaultAction::Pass);
        assert_eq!(inj.on_frame(), FaultAction::Pass);
        assert_eq!(inj.on_frame(), FaultAction::Kill);
    }

    #[test]
    fn flaky_profile_schedules_drops_and_corruption_early() {
        // The chaos tests rely on the default profile actually firing:
        // within a few hundred frames every seed must schedule at
        // least one drop and one corruption.
        for seed in [41, 1337, 20260807] {
            let plan = FaultPlan::new(seed, ChaosProfile::named("flaky").unwrap());
            let mut inj = plan.injector();
            let mut drops = 0;
            let mut corrupts = 0;
            for _ in 0..400 {
                match inj.on_frame() {
                    FaultAction::Drop => drops += 1,
                    FaultAction::Corrupt { .. } => corrupts += 1,
                    _ => {}
                }
            }
            assert!(drops >= 1 && corrupts >= 1, "seed {seed}: {drops} drops, {corrupts} corrupts");
        }
    }
}
