//! The fleet tier: a gateway fronting N `ugd-server` shards.
//!
//! The paper scales by layering LoadCoordinators over many solver
//! processes; this module applies the same move one level up. A
//! [`Gateway`] speaks the *identical* client protocol as a
//! [`Server`](crate::server::Server) — `ugd` and [`JobClient`] work
//! against either — but instead of owning a worker pool it owns a fleet
//! of shards, each a full `ugd-server` with its own pool, ledger and
//! checkpoints. Four mechanisms make the fleet more than N servers
//! behind a port:
//!
//! * **Consistent routing** — each accepted job is placed by *weighted
//!   rendezvous hashing* over the currently-healthy shard set: every
//!   shard scores `-w / ln(h)` where `h` is a per-(job, shard) hash and
//!   `w` a health weight that shrinks with queue depth and busy
//!   workers. The highest score wins. Unlike mod-N, removing a shard
//!   remaps *only* that shard's jobs; unlike plain rendezvous, the
//!   weight steers new load toward idle shards without ever thrashing
//!   placements that already exist.
//! * **Work stealing** — a health loop polls every shard's metrics
//!   exposition (`ugrs_server_queue_depth`, `ugrs_server_workers_busy`);
//!   when one shard idles while another's queue is at least
//!   [`GatewayConfig::steal_margin`] deep, the gateway *reclaims* a
//!   queued job from the deep shard ([`ClientRequest::Reclaim`] — atomic,
//!   refused once the job started) and resubmits it to the idle one.
//!   The gateway's own write-ahead ledger holds the job across the
//!   move, so a crash mid-steal re-runs it (at-least-once) rather than
//!   losing it.
//! * **Admission control** — a token bucket per tenant key (from
//!   [`JobSpec::tenant`]) plus a global in-flight bound. An over-quota
//!   submit is answered with [`ServerReply::Rejected`] — the 429 of
//!   this protocol — with nothing assigned, queued or made durable, so
//!   a misbehaving tenant cannot OOM the fleet or starve its peers.
//! * **Shard failover** — a shard that misses every health poll for
//!   [`GatewayConfig::shard_liveness`] (validated against the poll
//!   interval exactly like
//!   [`ProcessCommConfig::validate`](crate::process::ProcessCommConfig))
//!   is declared dead. Every job routed to it is re-dispatched to a
//!   surviving peer; for jobs that were mid-run the gateway replays the
//!   dead shard's on-disk checkpoint as [`JobSpec::restart_from`], so
//!   they resume as run `1.k` of their restart chain (Table 2
//!   semantics) instead of starting over.
//!
//! One OS thread per in-flight job ("tracker") proxies the owning
//! shard's `Watch` stream into the gateway's own event log, rewriting
//! local job ids to gateway ids — a watcher of the gateway sees one
//! continuous event stream across steals and failovers, punctuated by
//! [`JobEventKind::Routed`] markers.

use crate::ledger::{self, JobLedger};
use crate::server::{
    ClientRequest, FleetStatus, JobClient, JobEvent, JobEventKind, JobSpec, JobState, JobSummary,
    MetricsReport, ServerReply, ServerStatus, ShardSummary, SubmitOutcome, WireType,
};
use crate::telemetry::{self, MetricsRegistry};
use crate::wire::{self, FrameDecoder};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// One shard of the fleet: a running `ugd-server`.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Stable name used in `Routed` events, `ugd fleet` and logs.
    pub name: String,
    /// The shard's *client* address (where `ugd` would connect).
    pub addr: String,
    /// The shard's `--state-dir`, when the gateway can reach it (same
    /// host or shared filesystem). Required for checkpoint replay on
    /// failover; without it a dead shard's jobs restart from scratch.
    pub state_dir: Option<PathBuf>,
}

impl ShardSpec {
    /// A shard with no reachable state dir.
    pub fn new(name: impl Into<String>, addr: impl Into<String>) -> Self {
        ShardSpec { name: name.into(), addr: addr.into(), state_dir: None }
    }
}

/// A tenant's token-bucket budget: sustained `rate` submits/second with
/// bursts up to `burst`.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Tokens added per second.
    pub rate: f64,
    /// Bucket capacity (and initial fill).
    pub burst: f64,
}

/// Tuning of a [`Gateway`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// The fleet, in a stable order (indices are internal shard ids).
    pub shards: Vec<ShardSpec>,
    /// Client listener address (`"127.0.0.1:0"` = OS-picked port).
    pub client_addr: String,
    /// How often the health loop polls every shard.
    pub health_interval: Duration,
    /// A shard that answers no poll for this long is declared dead and
    /// failed over. Must exceed 2x [`Self::health_interval`] (the same
    /// rule [`ProcessCommConfig::validate`](crate::process) enforces
    /// between heartbeat and liveness).
    pub shard_liveness: Duration,
    /// Per-RPC bound on health polls and dispatch submits.
    pub probe_timeout: Duration,
    /// Steal only from queues at least this deep (0 disables stealing).
    pub steal_margin: u64,
    /// Global bound on accepted-but-not-terminal jobs; submits beyond
    /// it are `Rejected { reason: "capacity" }` — backpressure, not OOM.
    pub max_inflight: usize,
    /// Budget applied to tenants without an explicit entry in
    /// [`Self::tenant_quotas`]. `None` = unmetered.
    pub default_quota: Option<TenantQuota>,
    /// Per-tenant overrides, keyed by [`JobSpec::tenant`].
    pub tenant_quotas: HashMap<String, TenantQuota>,
    /// When set, the gateway keeps its own write-ahead [`JobLedger`]
    /// here: every accepted job is durable before its ack and retired
    /// on its terminal event — the safety net that makes a job survive
    /// the reclaim/resubmit window of a steal and a gateway crash.
    pub state_dir: Option<PathBuf>,
    /// When set, the gateway appends one JSON line per fleet decision
    /// (submit, reject, route, steal, failover, finish) to
    /// `<dir>/gateway.jsonl` — the artifact CI uploads.
    pub journal_dir: Option<PathBuf>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: Vec::new(),
            client_addr: "127.0.0.1:0".into(),
            health_interval: Duration::from_millis(250),
            shard_liveness: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(1),
            steal_margin: 2,
            max_inflight: 1024,
            default_quota: None,
            tenant_quotas: HashMap::new(),
            state_dir: None,
            journal_dir: None,
        }
    }
}

impl GatewayConfig {
    /// Rejects configurations that cannot work: an empty or ambiguous
    /// fleet, a liveness window the poll cadence cannot feed (the
    /// heartbeat-vs-liveness rule of
    /// [`ProcessCommConfig::validate`](crate::process)), and degenerate
    /// quotas.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards.is_empty() {
            return Err("a gateway needs at least one shard".into());
        }
        for (i, a) in self.shards.iter().enumerate() {
            for b in &self.shards[i + 1..] {
                if a.name == b.name {
                    return Err(format!("duplicate shard name {:?}", a.name));
                }
            }
        }
        if self.shard_liveness <= self.health_interval * 2 {
            return Err(format!(
                "shard liveness ({:?}) must exceed 2x the health interval ({:?}); \
                 raise --shard-liveness-ms or lower --health-ms",
                self.shard_liveness, self.health_interval
            ));
        }
        if self.max_inflight == 0 {
            return Err("max_inflight must be at least 1".into());
        }
        let quotas =
            self.tenant_quotas.values().chain(self.default_quota.as_ref()).collect::<Vec<_>>();
        for q in quotas {
            // Explicit finite checks so a NaN rate/burst is rejected too.
            let rate_ok = q.rate.is_finite() && q.rate > 0.0;
            let burst_ok = q.burst.is_finite() && q.burst >= 1.0;
            if !rate_ok || !burst_ok {
                return Err(format!(
                    "tenant quota needs rate > 0 and burst >= 1 (got rate {}, burst {})",
                    q.rate, q.burst
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Weighted rendezvous hashing
// ---------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a: stable across runs (no RandomState), cheap, good enough
    // to decorrelate shard names before mixing with the job id.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The weighted-rendezvous score of `job` on one shard: `-w / ln(h)`
/// with `h` uniform in (0, 1) from the (job, shard) pair and `w > 0`
/// the shard's health weight. Larger is better. The log transform makes
/// the winner distribution proportional to the weights while keeping
/// the defining rendezvous property: a shard's removal only remaps the
/// jobs it was winning.
fn rendezvous_score(job: u64, shard_name: &str, weight: f64) -> f64 {
    let h = splitmix64(job ^ name_hash(shard_name));
    // 53 uniform bits into (0, 1]; the +1 offset excludes an exact 0.
    let u = ((h >> 11) + 1) as f64 / (1u64 << 53) as f64;
    -weight / u.ln()
}

/// Health weight of a shard: 1 for an empty shard, shrinking as its
/// queue and busy workers grow — new jobs drift toward idle shards
/// without destabilizing existing placements.
fn health_weight(queue_depth: u64, workers_busy: u64) -> f64 {
    1.0 / (1.0 + queue_depth as f64 + workers_busy as f64)
}

// ---------------------------------------------------------------------
// Token buckets
// ---------------------------------------------------------------------

struct Bucket {
    tokens: f64,
    last: Instant,
}

impl Bucket {
    fn new(quota: &TenantQuota, now: Instant) -> Self {
        Bucket { tokens: quota.burst, last: now }
    }

    /// Refills from elapsed time, then takes one token if available.
    fn try_take(&mut self, quota: &TenantQuota, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * quota.rate).min(quota.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------
// Gateway state
// ---------------------------------------------------------------------

/// Where a job currently lives: shard index + the shard's local job id.
#[derive(Clone, Copy, Debug)]
struct Route {
    shard: usize,
    local: u64,
}

struct GwJob<Inst, Sub> {
    spec: JobSpec<Inst, Sub>,
    tenant: String,
    state: JobState,
    /// Bumped on every re-dispatch (steal, failover): a tracker holding
    /// an older epoch must discard what it reads — its shard no longer
    /// owns the job.
    epoch: u64,
    /// `None` while the job sits in the dispatch queue.
    route: Option<Route>,
    /// Freshest checkpoint to resume from at the next dispatch (set by
    /// failover from the dead shard's state dir).
    restart_from: Option<String>,
    /// The next shard-side event seq the tracker should ask for —
    /// `Watch { from_seq }` on (re)connect resumes here instead of
    /// replaying the shard's whole log, so a transient disconnect (or
    /// the deliberate reconnect after a failed steal) never duplicates
    /// already-delivered events in the gateway's log. Reset to 0 by the
    /// dispatcher whenever a *new* shard-local job is assigned (its log
    /// starts fresh); kept across a failed steal (same shard, same
    /// local id, same log).
    next_shard_seq: usize,
    run_index: u32,
    tracker_spawned: bool,
}

/// One dispatch-queue entry. `target` pins the destination (work
/// stealing routes to the idle shard it chose); `None` lets rendezvous
/// decide.
struct Dispatch {
    gid: u64,
    target: Option<usize>,
}

struct GwState<Inst, Sub> {
    jobs: BTreeMap<u64, GwJob<Inst, Sub>>,
    dispatch: VecDeque<Dispatch>,
    next_gid: u64,
    /// Accepted and not yet terminal (the `max_inflight` meter).
    inflight: usize,
}

/// Health-loop view of one shard.
struct ShardHealth {
    alive: bool,
    last_ok: Instant,
    queue_depth: u64,
    workers_busy: u64,
    pool_workers: u64,
    jobs_running: u64,
    /// Local ids of the shard's queued jobs at the last poll (steal
    /// victims are picked from these).
    queued_local: Vec<u64>,
}

struct GwLog<Sol> {
    events: Vec<JobEvent<Sol>>,
    done: bool,
}

impl<Sol> Default for GwLog<Sol> {
    fn default() -> Self {
        GwLog { events: Vec::new(), done: false }
    }
}

struct GwShared<Inst, Sub, Sol> {
    config: GatewayConfig,
    state: Mutex<GwState<Inst, Sub>>,
    /// Wakes the dispatcher and trackers (new dispatch, new route).
    cv: Condvar,
    events: Mutex<HashMap<u64, GwLog<Sol>>>,
    events_cv: Condvar,
    health: Mutex<Vec<ShardHealth>>,
    tenants: Mutex<HashMap<String, Bucket>>,
    metrics: MetricsRegistry,
    ledger: Option<JobLedger>,
    journal: Option<Mutex<io::BufWriter<std::fs::File>>>,
    shutdown: AtomicBool,
}

impl<Inst, Sub, Sol> GwShared<Inst, Sub, Sol> {
    fn emit(&self, gid: u64, kind: JobEventKind<Sol>) {
        let mut logs = self.events.lock().unwrap();
        let log = logs.entry(gid).or_default();
        if log.done {
            return;
        }
        if matches!(kind, JobEventKind::Finished { .. }) {
            log.done = true;
        }
        let seq = log.events.len();
        log.events.push(JobEvent { job: gid, seq, kind });
        self.events_cv.notify_all();
    }

    /// Appends one decision line to the gateway journal (best-effort).
    fn journal(&self, value: serde_json::Value) {
        if let Some(j) = &self.journal {
            let ts = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0);
            let mut line = value;
            if let serde_json::Value::Object(pairs) = &mut line {
                pairs.push(("ts".into(), serde_json::json!(ts)));
            }
            let Ok(text) = serde_json::to_string(&line) else { return };
            let mut w = j.lock().unwrap();
            let _ = w.write_all(text.as_bytes());
            let _ = w.write_all(b"\n");
            let _ = w.flush();
        }
    }

    fn counter(&self, name: &'static str, help: &'static str) -> Arc<telemetry::Counter> {
        self.metrics.counter(name, help)
    }
}

// ---------------------------------------------------------------------
// The gateway
// ---------------------------------------------------------------------

/// A running fleet gateway. Start one with [`Gateway::start`]; clients
/// connect to [`Gateway::client_addr`] exactly as they would to a
/// single server.
pub struct Gateway<Inst: WireType, Sub: WireType, Sol: WireType> {
    shared: Arc<GwShared<Inst, Sub, Sol>>,
    client_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// `(total, resumed-from-checkpoint)` jobs the startup recovery
    /// pass brought back — for the operator's startup banner.
    recovered: (usize, usize),
}

impl<Inst: WireType, Sub: WireType, Sol: WireType> Gateway<Inst, Sub, Sol> {
    /// Validates the config, binds the client listener and starts the
    /// dispatcher and health threads. Shards may come up later: an
    /// unreachable shard is simply unhealthy until its first successful
    /// poll.
    ///
    /// With [`GatewayConfig::state_dir`] set, this first runs the
    /// **recovery pass**: every job the gateway's own ledger still owes
    /// an answer for — acknowledged before a crash, or caught in the
    /// reclaim window of a steal — re-enters the dispatch queue under
    /// its original gateway id (carrying any `restart_from` checkpoint
    /// the record holds), and fresh ids are seeded past the highest
    /// recovered one so new jobs never overwrite stale records.
    pub fn start(config: GatewayConfig) -> io::Result<Self> {
        config.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut recovered: Vec<ledger::RecoveredJob<Inst, Sub>> = Vec::new();
        let mut next_gid = 0u64;
        let ledger = match &config.state_dir {
            Some(dir) => {
                let l = JobLedger::open(dir)?;
                let rec = l.recover::<Inst, Sub>()?;
                for path in &rec.skipped {
                    eprintln!(
                        "ugd-gateway: skipping unreadable ledger record {} (torn write?)",
                        path.display()
                    );
                }
                next_gid = rec.next_job;
                recovered = rec.jobs;
                Some(l)
            }
            None => None,
        };
        let journal = match &config.journal_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let file = std::fs::File::create(dir.join("gateway.jsonl"))?;
                Some(Mutex::new(io::BufWriter::new(file)))
            }
            None => None,
        };
        let listener = TcpListener::bind(&config.client_addr)?;
        let client_addr = listener.local_addr()?;
        let now = Instant::now();
        let health = config
            .shards
            .iter()
            .map(|_| ShardHealth {
                alive: true, // grace until the first liveness window expires
                last_ok: now,
                queue_depth: 0,
                workers_busy: 0,
                pool_workers: 0,
                jobs_running: 0,
                queued_local: Vec::new(),
            })
            .collect();
        let mut jobs = BTreeMap::new();
        let mut dispatch = VecDeque::new();
        for r in &recovered {
            let tenant = r.spec.tenant.clone().unwrap_or_else(|| "default".into());
            jobs.insert(
                r.job,
                GwJob {
                    spec: r.spec.clone(),
                    tenant,
                    state: JobState::Queued,
                    epoch: 0,
                    route: None,
                    restart_from: r.checkpoint.clone(),
                    run_index: r.run_index,
                    next_shard_seq: 0,
                    tracker_spawned: false,
                },
            );
            dispatch.push_back(Dispatch { gid: r.job, target: None });
        }
        let inflight = jobs.len();
        let shared = Arc::new(GwShared {
            config,
            state: Mutex::new(GwState { jobs, dispatch, next_gid, inflight }),
            cv: Condvar::new(),
            events: Mutex::new(HashMap::new()),
            events_cv: Condvar::new(),
            health: Mutex::new(health),
            tenants: Mutex::new(HashMap::new()),
            metrics: MetricsRegistry::new(),
            ledger,
            journal,
            shutdown: AtomicBool::new(false),
        });
        // Pre-register the families so a scrape right after startup
        // sees the full schema.
        for family in ["stp", "misdp", "maxcut"] {
            shared.metrics.counter_with(
                "ugrs_gateway_jobs_submitted_total",
                &[("family", family)],
                "Jobs accepted by the gateway, by instance family",
            );
        }
        shared.counter("ugrs_gateway_jobs_stolen_total", "Queued jobs migrated off a deep shard");
        shared.counter(
            "ugrs_gateway_jobs_failed_over_total",
            "Jobs replayed from a dead shard onto a peer",
        );
        for reason in ["quota", "capacity"] {
            shared.metrics.counter_with(
                "ugrs_gateway_jobs_rejected_total",
                &[("reason", reason)],
                "Submissions refused by admission control, by reason",
            );
        }
        for mode in ["requeued", "resumed"] {
            shared.metrics.counter_with(
                "ugrs_gateway_jobs_recovered_total",
                &[("mode", mode)],
                "Jobs brought back by the startup recovery pass, by mode",
            );
        }
        // Re-announce the recovered jobs: same Queued-before-ack shape a
        // live submit has, so a watcher reattaching after the restart
        // sees a well-formed stream from seq 0.
        for r in &recovered {
            let mode = if r.checkpoint.is_some() { "resumed" } else { "requeued" };
            shared
                .metrics
                .counter_with(
                    "ugrs_gateway_jobs_recovered_total",
                    &[("mode", mode)],
                    "Jobs brought back by the startup recovery pass, by mode",
                )
                .inc();
            shared.emit(r.job, JobEventKind::Queued);
            shared.journal(serde_json::json!({
                "ev": "recover", "gid": r.job, "resumed": r.checkpoint.is_some(),
            }));
        }
        shared
            .metrics
            .gauge("ugrs_gateway_shards_healthy", "Shards answering health polls")
            .set(shared.config.shards.len() as f64);
        shared.metrics.histogram_with(
            "ugrs_gateway_submit_ack_seconds",
            &[],
            "Submit receipt to durable ack, seconds",
            &[0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25],
        );
        let mut threads = Vec::new();
        let sh = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ugw-dispatch".into())
                .spawn(move || dispatcher_loop(sh))?,
        );
        let sh = shared.clone();
        threads.push(
            std::thread::Builder::new().name("ugw-health".into()).spawn(move || health_loop(sh))?,
        );
        let sh = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ugw-accept".into())
                .spawn(move || accept_loop(sh, listener))?,
        );
        let resumed = recovered.iter().filter(|r| r.checkpoint.is_some()).count();
        Ok(Gateway { shared, client_addr, threads, recovered: (recovered.len(), resumed) })
    }

    /// How many jobs the startup recovery pass brought back:
    /// `(total, resumed_from_checkpoint)`. `(0, 0)` without a state
    /// dir or on a clean ledger.
    pub fn recovered_jobs(&self) -> (usize, usize) {
        self.recovered
    }

    /// Where clients connect.
    pub fn client_addr(&self) -> SocketAddr {
        self.client_addr
    }

    /// Stops the gateway's own threads. The shards keep running — a
    /// gateway is a routing tier, not the fleet's owner.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        self.shared.events_cv.notify_all();
    }

    /// [`Self::shutdown`] followed by joining every gateway thread
    /// (tracker threads exit on the shutdown flag as well).
    pub fn shutdown_and_join(self) {
        self.shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Blocks until a client sends `Shutdown`, then joins every
    /// gateway thread — what the `ugd-gateway` binary does after its
    /// banner.
    pub fn join(self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------
// Admission + submit
// ---------------------------------------------------------------------

fn reject<Inst, Sub, Sol: Clone>(
    shared: &GwShared<Inst, Sub, Sol>,
    tenant: &str,
    reason: &'static str,
) {
    shared
        .metrics
        .counter_with(
            "ugrs_gateway_jobs_rejected_total",
            &[("reason", reason)],
            "Submissions refused by admission control, by reason",
        )
        .inc();
    shared.journal(serde_json::json!({ "ev": "reject", "tenant": tenant, "reason": reason }));
}

fn gw_submit<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: &GwShared<Inst, Sub, Sol>,
    spec: JobSpec<Inst, Sub>,
) -> io::Result<Result<u64, &'static str>> {
    let t0 = Instant::now();
    let tenant = spec.tenant.clone().unwrap_or_else(|| "default".into());
    let family = spec.family.clone().unwrap_or_else(|| "unknown".into());
    let quota =
        shared.config.tenant_quotas.get(&tenant).or(shared.config.default_quota.as_ref()).copied();
    // Admission and id assignment are one critical section: N racing
    // submits cannot all pass the capacity check and then overshoot
    // `max_inflight`, because each one *reserves* its inflight slot
    // (and its tenant token) before the lock drops. The write-ahead
    // fsync happens outside the lock — every submitter syncs its own
    // record file, so concurrent submits do not serialize on the disk —
    // and a failed write rolls the reservation and the token back.
    let gid = {
        let mut st = shared.state.lock().unwrap();
        if st.inflight >= shared.config.max_inflight {
            drop(st);
            reject(shared, &tenant, "capacity");
            return Ok(Err("capacity"));
        }
        if let Some(quota) = &quota {
            let now = Instant::now();
            let mut tenants = shared.tenants.lock().unwrap();
            let bucket = tenants.entry(tenant.clone()).or_insert_with(|| Bucket::new(quota, now));
            if !bucket.try_take(quota, now) {
                drop(tenants);
                drop(st);
                reject(shared, &tenant, "quota");
                return Ok(Err("quota"));
            }
        }
        let gid = st.next_gid;
        st.next_gid += 1;
        st.inflight += 1;
        gid
    };
    // Same write-ahead discipline as the server: durable before the
    // ack, so neither a gateway crash nor the reclaim window of a later
    // steal can lose an acknowledged job. The gid is not in `st.jobs`
    // yet, but the client cannot name it before the ack either.
    if let Some(ledger) = &shared.ledger {
        if let Err(e) = ledger.record_submitted(gid, &spec) {
            // The submit is answered with an Error: release the
            // reserved slot and put the tenant's token back — a failed
            // disk must not bill the bucket for a job never accepted.
            // (The gid itself is burned; ids need not be dense.)
            shared.state.lock().unwrap().inflight -= 1;
            if let Some(quota) = &quota {
                if let Some(b) = shared.tenants.lock().unwrap().get_mut(&tenant) {
                    b.tokens = (b.tokens + 1.0).min(quota.burst);
                }
            }
            return Err(e);
        }
    }
    {
        let mut st = shared.state.lock().unwrap();
        let run_index = spec
            .restart_from
            .as_deref()
            .and_then(ledger::checkpoint_meta)
            .map_or(1, |(run, _)| run + 1);
        st.jobs.insert(
            gid,
            GwJob {
                restart_from: spec.restart_from.clone(),
                spec,
                tenant: tenant.clone(),
                state: JobState::Queued,
                epoch: 0,
                route: None,
                run_index,
                next_shard_seq: 0,
                tracker_spawned: false,
            },
        );
        st.dispatch.push_back(Dispatch { gid, target: None });
    };
    shared
        .metrics
        .counter_with(
            "ugrs_gateway_jobs_submitted_total",
            &[("family", &family)],
            "Jobs accepted by the gateway, by instance family",
        )
        .inc();
    shared.emit(gid, JobEventKind::Queued);
    shared.journal(serde_json::json!({ "ev": "submit", "gid": gid, "tenant": tenant }));
    shared
        .metrics
        .histogram_with(
            "ugrs_gateway_submit_ack_seconds",
            &[],
            "Submit receipt to durable ack, seconds",
            &[0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25],
        )
        .observe(t0.elapsed().as_secs_f64());
    shared.cv.notify_all();
    Ok(Ok(gid))
}

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

/// Picks the healthy shard that wins the weighted rendezvous for `gid`.
fn pick_shard<Inst, Sub, Sol>(shared: &GwShared<Inst, Sub, Sol>, gid: u64) -> Option<usize> {
    let health = shared.health.lock().unwrap();
    let mut best: Option<(usize, f64)> = None;
    for (i, h) in health.iter().enumerate() {
        if !h.alive {
            continue;
        }
        let w = health_weight(h.queue_depth, h.workers_busy);
        let score = rendezvous_score(gid, &shared.config.shards[i].name, w);
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((i, score));
        }
    }
    best.map(|(i, _)| i)
}

/// Routes queued dispatch entries to shards, one at a time: clone the
/// spec (with the freshest `restart_from`), pick a target, submit over
/// a bounded connection, then record the route and make sure a tracker
/// thread is watching. Failures requeue the entry — a job is never
/// dropped between the gateway's ledger and a shard's.
fn dispatcher_loop<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<GwShared<Inst, Sub, Sol>>,
) {
    loop {
        let entry = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(e) = st.dispatch.pop_front() {
                    break e;
                }
                st = shared.cv.wait_timeout(st, Duration::from_millis(200)).unwrap().0;
            }
        };
        let Dispatch { gid, target } = entry;
        let (spec, epoch) = {
            let st = shared.state.lock().unwrap();
            let Some(job) = st.jobs.get(&gid) else { continue };
            if job.state.is_terminal() {
                continue;
            }
            let mut spec = job.spec.clone();
            spec.restart_from = job.restart_from.clone();
            (spec, job.epoch)
        };
        // A failed-over job must not fan out wider than its chain: its
        // resumed run reuses the original worker request.
        let target = target
            .filter(|&t| shared.health.lock().unwrap()[t].alive)
            .or_else(|| pick_shard(&shared, gid));
        let Some(target) = target else {
            // No healthy shard right now: park the entry and retry.
            let mut st = shared.state.lock().unwrap();
            st.dispatch.push_back(Dispatch { gid, target: None });
            drop(st);
            std::thread::sleep(shared.config.health_interval);
            continue;
        };
        let addr = shared.config.shards[target].addr.clone();
        let resumed = spec.restart_from.is_some();
        let outcome =
            JobClient::<Inst, Sub, Sol>::connect_timeout(&addr, shared.config.probe_timeout)
                .and_then(|mut c| c.try_submit(spec));
        match outcome {
            Ok(SubmitOutcome::Accepted(local)) => {
                let spawn_tracker = {
                    let mut st = shared.state.lock().unwrap();
                    let Some(job) = st.jobs.get_mut(&gid) else { continue };
                    // Only the dispatcher assigns routes and a queued
                    // entry has none, so the epoch cannot have moved —
                    // checked anyway: a stale submit must be cancelled,
                    // not recorded.
                    if job.epoch != epoch || job.state.is_terminal() {
                        drop(st);
                        if let Ok(mut c) = JobClient::<Inst, Sub, Sol>::connect_timeout(
                            &addr,
                            shared.config.probe_timeout,
                        ) {
                            let _ = c.cancel(local);
                        }
                        continue;
                    }
                    job.route = Some(Route { shard: target, local });
                    // A new shard-local job means a new event log that
                    // starts at seq 0 — the tracker must not skip it.
                    job.next_shard_seq = 0;
                    let spawn = !job.tracker_spawned;
                    job.tracker_spawned = true;
                    spawn
                };
                shared.emit(
                    gid,
                    JobEventKind::Routed { shard: shared.config.shards[target].name.clone() },
                );
                shared.journal(serde_json::json!({
                    "ev": "route", "gid": gid, "shard": shared.config.shards[target].name,
                    "local": local, "resumed": resumed,
                }));
                if spawn_tracker {
                    let sh = shared.clone();
                    std::thread::Builder::new()
                        .name(format!("ugw-track-{gid}"))
                        .spawn(move || tracker_loop(sh, gid))
                        .expect("spawn tracker thread");
                }
                shared.cv.notify_all();
            }
            Ok(SubmitOutcome::Rejected(_)) | Err(_) => {
                // Shard draining, dead or unreachable: requeue and let
                // the health loop sort the fleet out.
                let mut st = shared.state.lock().unwrap();
                st.dispatch.push_back(Dispatch { gid, target: None });
                drop(st);
                std::thread::sleep(shared.config.health_interval);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Trackers: one thread per in-flight job
// ---------------------------------------------------------------------

/// Follows `gid` wherever routing sends it: watches the owning shard's
/// event stream, rewrites local ids to the gateway id, and appends to
/// the gateway's log. When the route changes (steal, failover) the
/// stale stream is abandoned — the epoch check makes delivered events
/// from a disowned shard inert, including its `Cancelled` terminal from
/// a reclaim.
fn tracker_loop<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<GwShared<Inst, Sub, Sol>>,
    gid: u64,
) {
    'routes: loop {
        // Wait for a current route (or terminality).
        let (shard, local, epoch, from_seq) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let Some(job) = st.jobs.get(&gid) else { return };
                if job.state.is_terminal() {
                    return;
                }
                if let Some(r) = &job.route {
                    break (r.shard, r.local, job.epoch, job.next_shard_seq);
                }
                st = shared.cv.wait_timeout(st, Duration::from_millis(200)).unwrap().0;
            }
        };
        let addr = shared.config.shards[shard].addr.clone();
        let stream = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(_) => {
                // Shard unreachable: wait for failover to re-route.
                std::thread::sleep(Duration::from_millis(100));
                continue 'routes;
            }
        };
        stream.set_nodelay(true).ok();
        // The periodic timeout is what lets this thread notice a route
        // change while the stale shard's stream is silent.
        if stream.set_read_timeout(Some(Duration::from_millis(500))).is_err() {
            continue 'routes;
        }
        let mut reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => continue 'routes,
        };
        let mut writer = stream;
        if wire::write_msg(&mut writer, &ClientRequest::<Inst, Sub>::Watch { job: local, from_seq })
            .is_err()
        {
            std::thread::sleep(Duration::from_millis(100));
            continue 'routes;
        }
        let mut dec = FrameDecoder::new();
        loop {
            match wire::read_msg::<ServerReply<Sol>, _>(&mut reader, &mut dec) {
                Ok(Some(ServerReply::Event { event })) => {
                    if !deliver(&shared, gid, epoch, event) {
                        continue 'routes;
                    }
                }
                Ok(Some(_)) | Ok(None) => {
                    // Error reply (shard restarted and forgot the job)
                    // or clean close: re-resolve the route.
                    std::thread::sleep(Duration::from_millis(100));
                    continue 'routes;
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Stale? (steal/failover bumped the epoch)
                    let st = shared.state.lock().unwrap();
                    match st.jobs.get(&gid) {
                        Some(job) if job.epoch == epoch && !job.state.is_terminal() => {}
                        _ => continue 'routes,
                    }
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(100));
                    continue 'routes;
                }
            }
        }
    }
}

/// Applies one shard event to the gateway's view of `gid`. Returns
/// false when the tracker must abandon this stream (stale epoch or
/// terminal). Holding `epoch` fixed across the whole delivery makes a
/// steal linearizable: the steal bumps the epoch *before* it reclaims,
/// so the reclaim's `Cancelled` terminal can never be mistaken for the
/// job's real end.
fn deliver<Inst, Sub, Sol: Clone>(
    shared: &GwShared<Inst, Sub, Sol>,
    gid: u64,
    epoch: u64,
    event: JobEvent<Sol>,
) -> bool {
    let mut st = shared.state.lock().unwrap();
    let Some(job) = st.jobs.get_mut(&gid) else { return false };
    if job.epoch != epoch || job.state.is_terminal() {
        return false;
    }
    // Consumed under the owning epoch: the reconnect cursor moves past
    // this event so a later `Watch` never re-delivers it.
    job.next_shard_seq = job.next_shard_seq.max(event.seq + 1);
    match &event.kind {
        // The gateway emitted its own Queued at submit; the shard's
        // (and its re-runs after a steal) would just repeat it.
        JobEventKind::Queued => true,
        JobEventKind::Finished { state, run_index, .. } => {
            job.state = *state;
            job.run_index = *run_index;
            let tenant = job.tenant.clone();
            let family = job.spec.family.clone().unwrap_or_else(|| "unknown".into());
            st.inflight -= 1;
            drop(st);
            // Same ordering as the server: durable retirement first,
            // then the announcement.
            if let Some(ledger) = &shared.ledger {
                if let Err(e) = ledger.record_finished(gid) {
                    eprintln!("ugd-gateway: cannot retire ledger record of job {gid}: {e}");
                }
            }
            shared
                .metrics
                .counter_with(
                    "ugrs_gateway_jobs_finished_total",
                    &[("state", state_label(*state)), ("family", &family)],
                    "Jobs that reached a terminal state, by state and instance family",
                )
                .inc();
            shared.journal(serde_json::json!({
                "ev": "finish", "gid": gid, "tenant": tenant,
                "state": state_label(*state), "run_index": run_index,
            }));
            shared.emit(gid, event.kind);
            shared.cv.notify_all();
            false
        }
        _ => {
            if let JobEventKind::Recovered { run_index, .. } = &event.kind {
                job.run_index = *run_index;
            }
            if let JobEventKind::Started { .. } = &event.kind {
                job.state = JobState::Running;
            }
            drop(st);
            shared.emit(gid, event.kind);
            true
        }
    }
}

fn state_label(state: JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Running => "running",
        JobState::Solved => "solved",
        JobState::Infeasible => "infeasible",
        JobState::TimedOut => "timed_out",
        JobState::Cancelled => "cancelled",
        JobState::Failed => "failed",
    }
}

// ---------------------------------------------------------------------
// Health loop: polling, failover, stealing
// ---------------------------------------------------------------------

fn health_loop<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<GwShared<Inst, Sub, Sol>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut newly_dead = Vec::new();
        for i in 0..shared.config.shards.len() {
            let addr = shared.config.shards[i].addr.clone();
            let poll = poll_shard::<Inst, Sub, Sol>(&addr, shared.config.probe_timeout);
            let mut health = shared.health.lock().unwrap();
            let h = &mut health[i];
            match poll {
                Ok(p) => {
                    h.last_ok = Instant::now();
                    h.queue_depth = p.queue_depth;
                    h.workers_busy = p.workers_busy;
                    h.pool_workers = p.pool_workers;
                    h.jobs_running = p.jobs_running;
                    h.queued_local = p.queued_local;
                    if !h.alive {
                        // The shard came back (a fresh instance on the
                        // same address): route to it again.
                        h.alive = true;
                    }
                }
                Err(_) => {
                    if h.alive && h.last_ok.elapsed() > shared.config.shard_liveness {
                        h.alive = false;
                        newly_dead.push(i);
                    }
                }
            }
            let healthy = health.iter().filter(|h| h.alive).count();
            drop(health);
            shared
                .metrics
                .gauge("ugrs_gateway_shards_healthy", "Shards answering health polls")
                .set(healthy as f64);
        }
        for shard in newly_dead {
            fail_over(&shared, shard);
        }
        if shared.config.steal_margin > 0 {
            maybe_steal(&shared);
        }
        std::thread::sleep(shared.config.health_interval);
    }
}

struct ShardPoll {
    queue_depth: u64,
    workers_busy: u64,
    pool_workers: u64,
    jobs_running: u64,
    queued_local: Vec<u64>,
}

/// One bounded health poll: the shard's exposition (for the gauges the
/// steal and routing decisions read) plus its status (for the queued
/// local ids steals pick victims from).
fn poll_shard<Inst: WireType, Sub: WireType, Sol: WireType>(
    addr: &str,
    timeout: Duration,
) -> io::Result<ShardPoll> {
    let mut client = JobClient::<Inst, Sub, Sol>::connect_timeout(addr, timeout)?;
    let report = client.metrics()?;
    let status = client.status()?;
    Ok(ShardPoll {
        queue_depth: telemetry::sample_sum(&report.text, "ugrs_server_queue_depth") as u64,
        workers_busy: telemetry::sample_sum(&report.text, "ugrs_server_workers_busy") as u64,
        pool_workers: telemetry::sample_sum(&report.text, "ugrs_server_pool_workers") as u64,
        jobs_running: telemetry::sample_sum(&report.text, "ugrs_server_jobs_running") as u64,
        queued_local: status.queued,
    })
}

/// A shard died: every job routed to it goes back through dispatch.
/// Jobs that were mid-run resume from the dead shard's last on-disk
/// checkpoint (when its state dir is reachable) as run `1.k` — the
/// fleet-level replay of the server's own crash recovery.
fn fail_over<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: &Arc<GwShared<Inst, Sub, Sol>>,
    shard: usize,
) {
    let spec = &shared.config.shards[shard];
    let orphans: Vec<(u64, u64, u64)> = {
        let st = shared.state.lock().unwrap();
        st.jobs
            .iter()
            .filter(|(_, j)| !j.state.is_terminal())
            .filter_map(|(gid, j)| {
                j.route.as_ref().filter(|r| r.shard == shard).map(|r| (*gid, r.local, j.epoch))
            })
            .collect()
    };
    shared.journal(serde_json::json!({
        "ev": "shard_dead", "shard": spec.name, "orphans": orphans.len(),
    }));
    for (gid, local, epoch) in orphans {
        // Checkpoint replay: the dead shard's coordinator saved its
        // primitive nodes every checkpoint interval; the freshest save
        // is the resume point.
        let checkpoint = spec
            .state_dir
            .as_ref()
            .map(|d| d.join("checkpoints").join(format!("job-{local}.json")))
            .and_then(|p| std::fs::read_to_string(p).ok())
            .filter(|json| ledger::checkpoint_meta(json).is_some());
        let resumed = checkpoint.is_some();
        {
            let mut st = shared.state.lock().unwrap();
            let Some(job) = st.jobs.get_mut(&gid) else { continue };
            if job.epoch != epoch || job.state.is_terminal() {
                continue; // moved or finished while we read the disk
            }
            job.epoch += 1;
            job.route = None;
            job.state = JobState::Queued;
            if let Some(cp) = checkpoint {
                job.restart_from = Some(cp);
            }
            st.dispatch.push_back(Dispatch { gid, target: None });
        }
        shared
            .counter(
                "ugrs_gateway_jobs_failed_over_total",
                "Jobs replayed from a dead shard onto a peer",
            )
            .inc();
        shared.journal(serde_json::json!({
            "ev": "failover", "gid": gid, "from": spec.name, "resumed": resumed,
        }));
    }
    shared.cv.notify_all();
}

/// One steal per sweep: if some healthy shard idles while another's
/// queue is at least `steal_margin` deep, move one queued job. The
/// sequence is linearized by the epoch bump *before* the reclaim — see
/// [`deliver`].
fn maybe_steal<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: &Arc<GwShared<Inst, Sub, Sol>>,
) {
    let (idle, victim, victim_queued) = {
        let health = shared.health.lock().unwrap();
        let idle = health
            .iter()
            .enumerate()
            .position(|(_, h)| h.alive && h.queue_depth == 0 && h.workers_busy < h.pool_workers);
        let victim = health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.alive && h.queue_depth >= shared.config.steal_margin)
            .max_by_key(|(_, h)| h.queue_depth)
            .map(|(i, _)| i);
        match (idle, victim) {
            (Some(i), Some(v)) if i != v => (i, v, health[v].queued_local.clone()),
            _ => return,
        }
    };
    // Map a queued local id back to its gateway job.
    let picked = {
        let st = shared.state.lock().unwrap();
        victim_queued.iter().find_map(|&local| {
            st.jobs.iter().find_map(|(gid, j)| {
                (!j.state.is_terminal()
                    && j.route.map(|r| r.shard == victim && r.local == local).unwrap_or(false))
                .then_some((*gid, local, j.epoch))
            })
        })
    };
    let Some((gid, local, epoch)) = picked else { return };
    // Disown first: from here on every event the old shard still sends
    // (including the reclaim's Cancelled terminal) is stale by epoch.
    {
        let mut st = shared.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&gid) else { return };
        if job.epoch != epoch || job.state.is_terminal() {
            return;
        }
        job.epoch += 1;
        job.route = None;
    }
    let addr = shared.config.shards[victim].addr.clone();
    let reclaimed =
        JobClient::<Inst, Sub, Sol>::connect_timeout(&addr, shared.config.probe_timeout)
            .and_then(|mut c| c.reclaim(local))
            .unwrap_or(false);
    let mut st = shared.state.lock().unwrap();
    let Some(job) = st.jobs.get_mut(&gid) else { return };
    // The disown window is not exclusive: while the route was empty a
    // cancel can take the undispatched path (terminal `Cancelled`,
    // inflight released, ledger retired). Requeueing now would
    // resurrect an acknowledged-cancelled job — and underflow the
    // inflight meter at its second terminal. Nothing else may bump the
    // epoch either (defense in depth: a concurrent owner means this
    // steal lost).
    if job.epoch != epoch + 1 || job.state.is_terminal() {
        drop(st);
        if !reclaimed {
            // The reclaim was refused, so the job still runs on the
            // victim shard even though the gateway already answered its
            // terminal — forward the cancel instead of restoring the
            // route (best-effort: the shard's pool should not keep
            // burning on a job nobody is waiting for).
            if let Ok(mut c) =
                JobClient::<Inst, Sub, Sol>::connect_timeout(&addr, shared.config.probe_timeout)
            {
                let _ = c.cancel(local);
            }
        }
        return;
    }
    if reclaimed {
        job.state = JobState::Queued;
        st.dispatch.push_back(Dispatch { gid, target: Some(idle) });
        drop(st);
        shared
            .counter("ugrs_gateway_jobs_stolen_total", "Queued jobs migrated off a deep shard")
            .inc();
        shared.journal(serde_json::json!({
            "ev": "steal", "gid": gid,
            "from": shared.config.shards[victim].name, "to": shared.config.shards[idle].name,
        }));
    } else {
        // The job started (or finished) before the reclaim landed: it
        // stays where it is. The route returns under the *new* epoch,
        // so its tracker reconnects and resumes the stream from
        // `next_shard_seq` — the delivery cursor did not move for
        // anything the disown window discarded, so those events are
        // re-fetched exactly once, not the whole log again.
        job.route = Some(Route { shard: victim, local });
        drop(st);
    }
    shared.cv.notify_all();
}

// ---------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------

fn accept_loop<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: Arc<GwShared<Inst, Sub, Sol>>,
    listener: TcpListener,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let sh = shared.clone();
                let _ = std::thread::Builder::new().name("ugw-client".into()).spawn(move || {
                    let _ = serve_client(&sh, stream);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_client<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: &Arc<GwShared<Inst, Sub, Sol>>,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut dec = FrameDecoder::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req = match wire::read_msg::<ClientRequest<Inst, Sub>, _>(&mut reader, &mut dec) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) => return Err(e),
        };
        match req {
            ClientRequest::Submit { spec } => match gw_submit(shared, spec) {
                Ok(Ok(job)) => {
                    wire::write_msg(&mut writer, &ServerReply::<Sol>::Submitted { job })?
                }
                Ok(Err(reason)) => wire::write_msg(
                    &mut writer,
                    &ServerReply::<Sol>::Rejected { reason: reason.into() },
                )?,
                Err(e) => wire::write_msg(
                    &mut writer,
                    &ServerReply::<Sol>::Error { message: format!("ledger write failed: {e}") },
                )?,
            },
            ClientRequest::Cancel { job } => {
                let ok = gw_cancel(shared, job);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::CancelResult { job, ok })?;
            }
            ClientRequest::Reclaim { job } => {
                let _ = job;
                wire::write_msg(
                    &mut writer,
                    &ServerReply::<Sol>::Error {
                        message: "a gateway steals for itself; Reclaim addresses shards".into(),
                    },
                )?;
            }
            ClientRequest::Watch { job, from_seq } => {
                stream_gw_events(shared, &mut writer, job, from_seq)?;
            }
            ClientRequest::Status => {
                let status = gw_status(shared);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::Status { status })?;
            }
            ClientRequest::Metrics => {
                let report = gw_metrics(shared);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::Metrics { report })?;
            }
            ClientRequest::Fleet => {
                let fleet = gw_fleet(shared);
                wire::write_msg(&mut writer, &ServerReply::<Sol>::Fleet { fleet })?;
            }
            ClientRequest::Shutdown => {
                wire::write_msg(&mut writer, &ServerReply::<Sol>::ShuttingDown)?;
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.cv.notify_all();
                shared.events_cv.notify_all();
                return Ok(());
            }
        }
    }
}

/// Cancels a gateway job wherever it is: still in the dispatch queue
/// (finish it locally) or routed (forward the cancel; the shard's
/// terminal event comes back through the tracker).
fn gw_cancel<Inst: WireType, Sub: WireType, Sol: WireType>(
    shared: &Arc<GwShared<Inst, Sub, Sol>>,
    gid: u64,
) -> bool {
    enum Where {
        Unknown,
        Undispatched { run_index: u32, family: String },
        Routed { addr: String, local: u64 },
    }
    let location = {
        let mut st = shared.state.lock().unwrap();
        match st.jobs.get_mut(&gid) {
            None => Where::Unknown,
            Some(job) if job.state.is_terminal() => Where::Unknown,
            Some(job) => match &job.route {
                Some(r) => Where::Routed {
                    addr: shared.config.shards[r.shard].addr.clone(),
                    local: r.local,
                },
                None => {
                    job.state = JobState::Cancelled;
                    let run_index = job.run_index;
                    let family = job.spec.family.clone().unwrap_or_else(|| "unknown".into());
                    st.dispatch.retain(|d| d.gid != gid);
                    st.inflight -= 1;
                    Where::Undispatched { run_index, family }
                }
            },
        }
    };
    match location {
        Where::Unknown => false,
        Where::Undispatched { run_index, family } => {
            if let Some(ledger) = &shared.ledger {
                let _ = ledger.record_finished(gid);
            }
            shared
                .metrics
                .counter_with(
                    "ugrs_gateway_jobs_finished_total",
                    &[("state", state_label(JobState::Cancelled)), ("family", &family)],
                    "Jobs that reached a terminal state, by state and instance family",
                )
                .inc();
            shared.emit(gid, empty_finished_gw(JobState::Cancelled, run_index));
            shared.cv.notify_all();
            true
        }
        Where::Routed { addr, local } => {
            JobClient::<Inst, Sub, Sol>::connect_timeout(&addr, shared.config.probe_timeout)
                .and_then(|mut c| c.cancel(local))
                .unwrap_or(false)
        }
    }
}

/// The gateway-side equivalent of the server's `empty_finished`.
fn empty_finished_gw<Sol>(state: JobState, run_index: u32) -> JobEventKind<Sol> {
    JobEventKind::Finished {
        state,
        obj: None,
        dual_bound: f64::NEG_INFINITY,
        solution: None,
        nodes: 0,
        nodes_so_far: 0,
        run_index,
        open_nodes: 0,
        workers_lost: 0,
        wall_time: 0.0,
        final_checkpoint: None,
    }
}

fn stream_gw_events<Inst, Sub, Sol: WireType>(
    shared: &GwShared<Inst, Sub, Sol>,
    writer: &mut TcpStream,
    gid: u64,
    from_seq: usize,
) -> io::Result<()> {
    {
        let logs = shared.events.lock().unwrap();
        if !logs.contains_key(&gid) {
            return wire::write_msg(
                writer,
                &ServerReply::<Sol>::Error { message: format!("unknown job {gid}") },
            );
        }
    }
    let mut next = from_seq;
    loop {
        let (batch, done_len) = {
            let logs = shared.events.lock().unwrap();
            let log = &logs[&gid];
            let batch: Vec<JobEvent<Sol>> =
                log.events.get(next..).map(|s| s.to_vec()).unwrap_or_default();
            let done_len = if log.done { Some(log.events.len()) } else { None };
            (batch, done_len)
        };
        next += batch.len();
        for event in batch {
            wire::write_msg(writer, &ServerReply::<Sol>::Event { event })?;
        }
        if matches!(done_len, Some(len) if next >= len) {
            return Ok(());
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let logs = shared.events.lock().unwrap();
        let _ = shared.events_cv.wait_timeout(logs, Duration::from_millis(200)).unwrap();
    }
}

/// Synthesizes a [`ServerStatus`] from the fleet view so status-only
/// tooling works unchanged against a gateway: `pool_target` aggregates
/// the shards' pools, `queued` is the dispatch queue, and each job row
/// reports the gateway's lifecycle view.
fn gw_status<Inst, Sub, Sol>(shared: &GwShared<Inst, Sub, Sol>) -> ServerStatus {
    let pool_target = {
        let health = shared.health.lock().unwrap();
        health.iter().map(|h| h.pool_workers as usize).sum()
    };
    let st = shared.state.lock().unwrap();
    let jobs = st
        .jobs
        .iter()
        .map(|(gid, j)| JobSummary {
            job: *gid,
            name: j.spec.name.clone(),
            state: j.state,
            priority: j.spec.priority,
            num_solvers: j.spec.num_solvers,
            run_index: j.run_index,
            open_nodes: None,
        })
        .collect();
    ServerStatus {
        pool_target,
        workers: Vec::new(),
        queued: st.dispatch.iter().map(|d| d.gid).collect(),
        jobs,
    }
}

fn gw_metrics<Inst, Sub, Sol>(shared: &GwShared<Inst, Sub, Sol>) -> MetricsReport {
    let jobs: Vec<crate::server::JobProgress> = {
        let st = shared.state.lock().unwrap();
        shared
            .metrics
            .gauge("ugrs_gateway_inflight", "Accepted jobs not yet terminal")
            .set(st.inflight as f64);
        shared
            .metrics
            .gauge("ugrs_gateway_dispatch_depth", "Jobs waiting in the dispatch queue")
            .set(st.dispatch.len() as f64);
        st.jobs
            .iter()
            .map(|(gid, j)| crate::server::JobProgress {
                job: *gid,
                name: j.spec.name.clone(),
                state: j.state,
                progress: None,
            })
            .collect()
    };
    let mut text = shared.metrics.render();
    telemetry::global().render_into(&mut text);
    MetricsReport { text, jobs }
}

fn gw_fleet<Inst, Sub, Sol>(shared: &GwShared<Inst, Sub, Sol>) -> FleetStatus {
    let shards = {
        let health = shared.health.lock().unwrap();
        shared
            .config
            .shards
            .iter()
            .zip(health.iter())
            .map(|(s, h)| ShardSummary {
                name: s.name.clone(),
                addr: s.addr.clone(),
                healthy: h.alive,
                queue_depth: h.queue_depth,
                workers_busy: h.workers_busy,
                pool_workers: h.pool_workers,
                jobs_running: h.jobs_running,
                last_heard_ms: h.last_ok.elapsed().as_millis() as u64,
            })
            .collect()
    };
    let (inflight, dispatch_depth, families) = {
        let st = shared.state.lock().unwrap();
        let mut families = std::collections::BTreeMap::new();
        for j in st.jobs.values() {
            let label = j.spec.family.clone().unwrap_or_else(|| "unknown".into());
            *families.entry(label).or_insert(0u64) += 1;
        }
        (st.inflight, st.dispatch.len(), families)
    };
    FleetStatus {
        shards,
        inflight,
        dispatch_depth,
        families,
        stolen_total: shared
            .counter("ugrs_gateway_jobs_stolen_total", "Queued jobs migrated off a deep shard")
            .get(),
        failed_over_total: shared
            .counter(
                "ugrs_gateway_jobs_failed_over_total",
                "Jobs replayed from a dead shard onto a peer",
            )
            .get(),
        rejected_total: ["quota", "capacity"]
            .iter()
            .map(|reason| {
                shared
                    .metrics
                    .counter_with(
                        "ugrs_gateway_jobs_rejected_total",
                        &[("reason", reason)],
                        "Submissions refused by admission control, by reason",
                    )
                    .get()
            })
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize) -> GatewayConfig {
        GatewayConfig {
            shards: (0..n)
                .map(|i| ShardSpec::new(format!("shard-{i}"), format!("127.0.0.1:{}", 7000 + i)))
                .collect(),
            ..GatewayConfig::default()
        }
    }

    #[test]
    fn validate_catches_bad_configs() {
        assert!(config(3).validate().is_ok());
        assert!(config(0).validate().is_err(), "empty fleet");
        let mut dup = config(2);
        dup.shards[1].name = dup.shards[0].name.clone();
        assert!(dup.validate().is_err(), "duplicate names");
        let mut tight = config(2);
        tight.shard_liveness = tight.health_interval * 2;
        assert!(tight.validate().is_err(), "liveness must exceed 2x poll interval");
        let mut zero = config(1);
        zero.max_inflight = 0;
        assert!(zero.validate().is_err());
        let mut quota = config(1);
        quota.default_quota = Some(TenantQuota { rate: 0.0, burst: 4.0 });
        assert!(quota.validate().is_err(), "rate must be positive");
        let mut quota = config(1);
        quota.tenant_quotas.insert("t".into(), TenantQuota { rate: 1.0, burst: 0.5 });
        assert!(quota.validate().is_err(), "burst below one token never admits");
    }

    fn pick(job: u64, names: &[&str], weights: &[f64]) -> usize {
        let mut best = (0, f64::NEG_INFINITY);
        for (i, name) in names.iter().enumerate() {
            let s = rendezvous_score(job, name, weights[i]);
            if s > best.1 {
                best = (i, s);
            }
        }
        best.0
    }

    #[test]
    fn rendezvous_balances_equal_weights() {
        let names = ["alpha", "beta", "gamma"];
        let weights = [1.0, 1.0, 1.0];
        let mut counts = [0usize; 3];
        for job in 0..3000u64 {
            counts[pick(job, &names, &weights)] += 1;
        }
        for c in counts {
            assert!((700..=1300).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn rendezvous_removal_only_remaps_the_lost_shard() {
        let names = ["alpha", "beta", "gamma"];
        let weights = [1.0, 1.0, 1.0];
        for job in 0..2000u64 {
            let with_all = pick(job, &names, &weights);
            // Drop "beta": jobs not on beta must keep their shard.
            let reduced = pick(job, &["alpha", "gamma"], &[1.0, 1.0]);
            let reduced_name = ["alpha", "gamma"][reduced];
            if names[with_all] != "beta" {
                assert_eq!(
                    names[with_all], reduced_name,
                    "job {job} moved although its shard survived"
                );
            }
        }
    }

    #[test]
    fn rendezvous_weight_steers_load() {
        let names = ["busy", "idle"];
        // The busy shard has a deep queue; the idle one is empty.
        let weights = [health_weight(8, 4), health_weight(0, 0)];
        let mut counts = [0usize; 2];
        for job in 0..2000u64 {
            counts[pick(job, &names, &weights)] += 1;
        }
        assert!(counts[1] > counts[0] * 3, "idle shard should win the large majority: {counts:?}");
    }

    #[test]
    fn token_bucket_enforces_burst_and_refill() {
        let quota = TenantQuota { rate: 10.0, burst: 3.0 };
        let t0 = Instant::now();
        let mut b = Bucket::new(&quota, t0);
        assert!(b.try_take(&quota, t0));
        assert!(b.try_take(&quota, t0));
        assert!(b.try_take(&quota, t0));
        assert!(!b.try_take(&quota, t0), "burst of 3 admits exactly 3 instant submits");
        // 100 ms at 10 tokens/s refills one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take(&quota, t1));
        assert!(!b.try_take(&quota, t1));
        // Refill never exceeds the burst capacity.
        let t2 = t1 + Duration::from_secs(60);
        let mut took = 0;
        while b.try_take(&quota, t2) {
            took += 1;
        }
        assert_eq!(took, 3, "a long idle period refills to burst, not beyond");
    }

    #[test]
    fn health_weight_decreases_with_load() {
        assert!(health_weight(0, 0) > health_weight(0, 2));
        assert!(health_weight(0, 2) > health_weight(5, 2));
        assert!(health_weight(100, 100) > 0.0);
    }
}
