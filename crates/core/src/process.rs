//! The distributed back-end: **ProcessComm**, `ug [ugrs-*,
//! ProcessComm]` — the ParaSCIP half of the paper's transport matrix,
//! with localhost TCP standing in for MPI.
//!
//! Topology is a star, exactly like UG's LoadCoordinator-centric MPI
//! layout: the coordinator process binds a [`ProcessListener`], spawns
//! (or is joined by) worker processes, and each worker holds one
//! connection carrying length-prefixed [`crate::wire`] frames both
//! ways.
//!
//! **Handshake.** A connecting worker sends `Hello { protocol,
//! rank_hint }`; the coordinator verifies the protocol version, assigns
//! a rank (honoring the hint when free — this is what makes spawned
//! worker *i* deterministically become rank *i*), and answers `Welcome
//! { rank, num_workers }`. Version-mismatched or garbled connections
//! are dropped before they can corrupt a run.
//!
//! **Robustness.** Every worker runs a heartbeat thread sending `Ping`
//! at a fixed interval, independent of solving, so a busy-but-healthy
//! worker deep in a subtree is never declared dead. On the coordinator
//! side each connection has a dedicated reader thread; a read error or
//! EOF (the kernel closes sockets when a worker is killed) synthesizes
//! [`Message::WorkerDied`] upward immediately, and a liveness sweep in
//! `recv_timeout` catches the hung-but-connected case when a rank's
//! last frame is older than the configured timeout. The supervisor
//! reacts by requeueing the dead rank's in-flight subproblem — solving
//! continues on the survivors.

use crate::messages::Message;
use crate::wire::{self, FrameDecoder};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Bumped on any frame-format or protocol change; a mismatch at
/// handshake drops the connection instead of desynchronizing mid-run.
pub const PROTOCOL_VERSION: u32 = 1;

/// Tuning knobs of the process transport.
#[derive(Clone, Debug)]
pub struct ProcessCommConfig {
    /// How long the coordinator waits for all workers to connect and
    /// complete the hello/welcome exchange.
    pub handshake_timeout: Duration,
    /// A rank whose last frame (of any kind) is older than this is
    /// declared dead even though its socket is still open.
    pub liveness_timeout: Duration,
    /// Interval of the worker-side heartbeat `Ping`.
    pub heartbeat_interval: Duration,
}

impl Default for ProcessCommConfig {
    fn default() -> Self {
        ProcessCommConfig {
            handshake_timeout: Duration::from_secs(20),
            liveness_timeout: Duration::from_secs(15),
            heartbeat_interval: Duration::from_millis(500),
        }
    }
}

/// Everything that crosses a worker connection after the handshake.
#[derive(serde::Serialize, serde::Deserialize)]
enum WireMsg<Sub, Sol> {
    /// Worker → coordinator keep-alive; consumed by the transport,
    /// never surfaced to coordination logic.
    Ping { rank: usize },
    /// A protocol message, verbatim.
    Msg(Message<Sub, Sol>),
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Hello {
    protocol: u32,
    rank_hint: Option<usize>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Welcome {
    rank: usize,
    num_workers: usize,
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/// The coordinator's accept socket. Bind first, then spawn workers
/// pointed at [`Self::local_addr`], then collect them with
/// [`Self::accept_workers`].
pub struct ProcessListener {
    listener: TcpListener,
}

impl ProcessListener {
    /// Binds; pass port 0 (e.g. `"127.0.0.1:0"`) to let the OS pick.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(ProcessListener { listener: TcpListener::bind(addr)? })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and handshakes exactly `n` workers, then returns the
    /// coordinator endpoint. Connections with the wrong protocol
    /// version (or that fail to say hello in time) are dropped and do
    /// not count toward `n`.
    pub fn accept_workers<Sub, Sol>(
        self,
        n: usize,
        config: &ProcessCommConfig,
    ) -> io::Result<ProcessLcComm<Sub, Sol>>
    where
        Sub: Serialize + DeserializeOwned + Send + 'static,
        Sol: Serialize + DeserializeOwned + Send + 'static,
    {
        let deadline = Instant::now() + config.handshake_timeout;
        self.listener.set_nonblocking(true)?;
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut accepted = 0usize;
        while accepted < n {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Ok(rank) = handshake_accept(&stream, &streams, n) {
                        streams[rank] = Some(stream);
                        accepted += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("only {accepted}/{n} workers connected in time"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }

        // Handshake done: switch to one blocking reader thread per rank.
        let (up_tx, up_rx) = channel();
        let last_heard = Arc::new(Mutex::new(vec![Instant::now(); n]));
        let died: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let mut writers = Vec::with_capacity(n);
        for (rank, slot) in streams.into_iter().enumerate() {
            let stream = slot.expect("all ranks handshaken");
            stream.set_nonblocking(false)?;
            stream.set_read_timeout(None)?;
            let reader = stream.try_clone()?;
            spawn_lc_reader(rank, reader, up_tx.clone(), last_heard.clone(), died.clone());
            writers.push(Mutex::new(Some(stream)));
        }
        Ok(ProcessLcComm {
            writers,
            up_rx,
            last_heard,
            died,
            liveness_timeout: config.liveness_timeout,
        })
    }
}

/// Performs the coordinator half of the hello/welcome exchange and
/// picks the connection's rank.
fn handshake_accept(
    stream: &TcpStream,
    taken: &[Option<TcpStream>],
    n: usize,
) -> io::Result<usize> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let hello: Hello = wire::read_msg(&mut reader, &mut dec)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before hello"))?;
    if hello.protocol != PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("protocol {} != {}", hello.protocol, PROTOCOL_VERSION),
        ));
    }
    let rank = match hello.rank_hint {
        Some(h) if h < n && taken[h].is_none() => h,
        _ => taken
            .iter()
            .position(|s| s.is_none())
            .expect("accept loop only runs while a rank is free"),
    };
    wire::write_msg(&mut (&*stream), &Welcome { rank, num_workers: n })?;
    Ok(rank)
}

fn spawn_lc_reader<Sub, Sol>(
    rank: usize,
    mut stream: TcpStream,
    up_tx: Sender<Message<Sub, Sol>>,
    last_heard: Arc<Mutex<Vec<Instant>>>,
    died: Arc<Vec<AtomicBool>>,
) where
    Sub: DeserializeOwned + Send + 'static,
    Sol: DeserializeOwned + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("lc-reader-{rank}"))
        .spawn(move || {
            let mut dec = FrameDecoder::new();
            loop {
                match wire::read_msg::<WireMsg<Sub, Sol>, _>(&mut stream, &mut dec) {
                    Ok(Some(wire_msg)) => {
                        last_heard.lock().unwrap()[rank] = Instant::now();
                        if let WireMsg::Msg(msg) = wire_msg {
                            if up_tx.send(msg).is_err() {
                                return; // coordinator gone
                            }
                        }
                    }
                    Ok(None) | Err(_) => {
                        // EOF or broken frame: the worker is gone (a
                        // killed process closes its sockets at once).
                        if !died[rank].swap(true, Ordering::SeqCst) {
                            let _ = up_tx.send(Message::WorkerDied { rank });
                        }
                        return;
                    }
                }
            }
        })
        .expect("spawn lc reader thread");
}

/// Coordinator endpoint of the process transport.
pub struct ProcessLcComm<Sub, Sol> {
    writers: Vec<Mutex<Option<TcpStream>>>,
    up_rx: Receiver<Message<Sub, Sol>>,
    last_heard: Arc<Mutex<Vec<Instant>>>,
    died: Arc<Vec<AtomicBool>>,
    liveness_timeout: Duration,
}

impl<Sub, Sol> std::fmt::Debug for ProcessLcComm<Sub, Sol> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProcessLcComm(n={})", self.writers.len())
    }
}

impl<Sub, Sol> ProcessLcComm<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// Number of connected worker processes.
    pub fn num_workers(&self) -> usize {
        self.writers.len()
    }

    /// Sends to one rank; false when the rank is out of range, already
    /// dead, or the write fails (in which case the writer is retired).
    pub fn send_to(&self, rank: usize, msg: Message<Sub, Sol>) -> bool {
        let Some(slot) = self.writers.get(rank) else { return false };
        let mut guard = slot.lock().unwrap();
        let Some(stream) = guard.as_mut() else { return false };
        match wire::write_msg(stream, &WireMsg::Msg(msg)) {
            Ok(()) => true,
            Err(_) => {
                *guard = None;
                false
            }
        }
    }

    /// Receives the next upward message, checking heartbeat liveness
    /// first: a rank silent past the timeout is reported as
    /// [`Message::WorkerDied`] exactly once.
    pub fn recv_timeout(&self, d: Duration) -> Option<Message<Sub, Sol>> {
        {
            let heard = self.last_heard.lock().unwrap();
            for rank in 0..heard.len() {
                if heard[rank].elapsed() > self.liveness_timeout
                    && !self.died[rank].swap(true, Ordering::SeqCst)
                {
                    return Some(Message::WorkerDied { rank });
                }
            }
        }
        match self.up_rx.recv_timeout(d) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Connects to the coordinator, retrying until it is listening (worker
/// processes may win the race against the coordinator's bind), and
/// completes the handshake. The returned endpoint already has its
/// heartbeat running.
pub fn connect_worker<Sub, Sol>(
    addr: &str,
    rank_hint: Option<usize>,
    config: &ProcessCommConfig,
) -> io::Result<ProcessWorkerComm<Sub, Sol>>
where
    Sub: Serialize + DeserializeOwned + Send + 'static,
    Sol: Serialize + DeserializeOwned + Send + 'static,
{
    let deadline = Instant::now() + config.handshake_timeout;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    wire::write_msg(&mut (&stream), &Hello { protocol: PROTOCOL_VERSION, rank_hint })?;
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let welcome: Welcome = wire::read_msg(&mut reader, &mut dec)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "coordinator closed before welcome")
    })?;
    stream.set_read_timeout(None)?;

    let rank = welcome.rank;
    let (down_tx, down_rx) = channel();
    spawn_worker_reader::<Sub, Sol>(rank, reader, dec, down_tx);

    let writer = Arc::new(Mutex::new(stream));
    let shutdown = Arc::new(AtomicBool::new(false));
    spawn_heartbeat::<Sub, Sol>(rank, writer.clone(), shutdown.clone(), config.heartbeat_interval);

    Ok(ProcessWorkerComm { rank, writer, down_rx, shutdown })
}

fn spawn_worker_reader<Sub, Sol>(
    rank: usize,
    mut stream: TcpStream,
    mut dec: FrameDecoder,
    down_tx: Sender<Message<Sub, Sol>>,
) where
    Sub: DeserializeOwned + Send + 'static,
    Sol: DeserializeOwned + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("worker-reader-{rank}"))
        .spawn(move || loop {
            match wire::read_msg::<WireMsg<Sub, Sol>, _>(&mut stream, &mut dec) {
                Ok(Some(WireMsg::Msg(msg))) => {
                    if down_tx.send(msg).is_err() {
                        return;
                    }
                }
                Ok(Some(WireMsg::Ping { .. })) => {} // not used downward
                Ok(None) | Err(_) => return,         // coordinator gone: recv() yields None
            }
        })
        .expect("spawn worker reader thread");
}

fn spawn_heartbeat<Sub, Sol>(
    rank: usize,
    writer: Arc<Mutex<TcpStream>>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) where
    Sub: Serialize + Send + 'static,
    Sol: Serialize + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("heartbeat-{rank}"))
        .spawn(move || loop {
            std::thread::sleep(interval);
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let ping: WireMsg<Sub, Sol> = WireMsg::Ping { rank };
            let mut stream = writer.lock().unwrap();
            if wire::write_msg(&mut *stream, &ping).is_err() {
                return; // connection gone; the reader notices too
            }
        })
        .expect("spawn heartbeat thread");
}

/// Worker endpoint of the process transport.
pub struct ProcessWorkerComm<Sub, Sol> {
    rank: usize,
    writer: Arc<Mutex<TcpStream>>,
    down_rx: Receiver<Message<Sub, Sol>>,
    shutdown: Arc<AtomicBool>,
}

impl<Sub, Sol> ProcessWorkerComm<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// This worker's rank as assigned in the handshake.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Non-blocking receive of the next coordinator message.
    pub fn try_recv(&self) -> Option<Message<Sub, Sol>> {
        self.down_rx.try_recv().ok()
    }

    /// Blocking receive; `None` when the connection is gone.
    pub fn recv(&self) -> Option<Message<Sub, Sol>> {
        self.down_rx.recv().ok()
    }

    /// Sends a message upward; false when the connection is gone.
    pub fn send(&self, msg: Message<Sub, Sol>) -> bool {
        let mut stream = self.writer.lock().unwrap();
        wire::write_msg(&mut *stream, &WireMsg::Msg(msg)).is_ok()
    }
}

impl<Sub, Sol> Drop for ProcessWorkerComm<Sub, Sol> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // `shutdown` acts on the socket itself, past every `try_clone`
        // dup the reader and heartbeat threads hold — they unblock with
        // EOF/EPIPE and exit, and the coordinator sees the hang-up at
        // once (even when the worker is dying abnormally).
        if let Ok(stream) = self.writer.lock() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ProcessCommConfig {
        ProcessCommConfig {
            handshake_timeout: Duration::from_secs(10),
            liveness_timeout: Duration::from_secs(30),
            heartbeat_interval: Duration::from_millis(100),
        }
    }

    /// Full in-process exercise of the socket path: handshake with rank
    /// hints, both message directions, and worker-death synthesis.
    #[test]
    fn handshake_roundtrip_and_death_detection() {
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = config();

        let mut joins = Vec::new();
        for rank in 0..2usize {
            let addr = addr.clone();
            let cfg = cfg.clone();
            joins.push(std::thread::spawn(move || {
                let comm = connect_worker::<u32, u32>(&addr, Some(rank), &cfg).unwrap();
                assert_eq!(comm.rank(), rank);
                assert!(comm.send(Message::Status {
                    rank,
                    dual_bound: rank as f64,
                    open: 1,
                    nodes: 2
                }));
                // Wait for an echo from the coordinator, then hang up
                // (rank 1 hangs up without being told — "dies").
                if rank == 0 {
                    match comm.recv() {
                        Some(Message::Terminate) => {}
                        other => panic!("expected terminate, got {other:?}"),
                    }
                }
            }));
        }

        let lc = listener.accept_workers::<u32, u32>(2, &cfg).unwrap();
        assert_eq!(lc.num_workers(), 2);
        let mut status_ranks = Vec::new();
        let mut died = Vec::new();
        // Expect two statuses and one death notice (rank 1 exits after
        // sending its status).
        let deadline = Instant::now() + Duration::from_secs(10);
        while (status_ranks.len() < 2 || died.is_empty()) && Instant::now() < deadline {
            match lc.recv_timeout(Duration::from_millis(50)) {
                Some(Message::Status { rank, .. }) => status_ranks.push(rank),
                Some(Message::WorkerDied { rank }) => died.push(rank),
                _ => {}
            }
        }
        status_ranks.sort_unstable();
        assert_eq!(status_ranks, vec![0, 1]);
        assert_eq!(died, vec![1]);

        assert!(lc.send_to(0, Message::Terminate));
        for j in joins {
            j.join().unwrap();
        }
        // Rank 1's writer should be retired by now or fail fast.
        let _ = lc.send_to(1, Message::Terminate);
    }

    #[test]
    fn protocol_mismatch_is_rejected() {
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = ProcessCommConfig { handshake_timeout: Duration::from_millis(600), ..config() };

        let bad = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            wire::write_msg(
                &mut (&stream),
                &Hello { protocol: PROTOCOL_VERSION + 1, rank_hint: None },
            )
            .unwrap();
            // The coordinator must drop us without a welcome.
            let mut reader = stream.try_clone().unwrap();
            reader.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut dec = FrameDecoder::new();
            assert!(matches!(
                wire::read_msg::<Welcome, _>(&mut reader, &mut dec),
                Ok(None) | Err(_)
            ));
        });

        // With only a bad client around, the accept must time out.
        let err = listener.accept_workers::<u32, u32>(1, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        bad.join().unwrap();
    }
}
