//! The distributed back-end: **ProcessComm**, `ug [ugrs-*,
//! ProcessComm]` — the ParaSCIP half of the paper's transport matrix,
//! with localhost TCP standing in for MPI.
//!
//! Topology is a star, exactly like UG's LoadCoordinator-centric MPI
//! layout: the coordinator process binds a [`ProcessListener`], spawns
//! (or is joined by) worker processes, and each worker holds one
//! connection carrying [`crate::wire`] frames both ways.
//!
//! **Handshake.** A connecting worker sends `Hello { protocol,
//! rank_hint, max_protocol, resume }` (always as a v1 frame); the
//! coordinator verifies the base protocol, assigns a rank (honoring
//! the hint when free — this is what makes spawned worker *i*
//! deterministically become rank *i*), negotiates the frame format
//! (`min(max_protocol, 2)`, so old peers keep speaking v1), and
//! answers `Welcome { rank, num_workers, protocol, session }`. After
//! the welcome both directions switch to the negotiated format.
//! Version-mismatched or garbled connections are dropped before they
//! can corrupt a run. Each connection handshakes on its own thread, so
//! a client that stalls mid-hello occupies only itself — never the
//! accept loop, and never a rank slot (ranks are claimed only once a
//! complete hello arrives, and released again if the welcome cannot be
//! written).
//!
//! **Self-healing (protocol v2).** Every v2 connection belongs to a
//! *session* identified by a token from the welcome. Reliable frames
//! carry sequence numbers and CRC32 checksums ([`crate::wire`]); both
//! ends keep a bounded retransmit ring of un-acked payloads. When a
//! connection breaks — EOF, write error, CRC corruption, or the
//! liveness sweep shutting down a silent socket — the worker
//! reconnects with exponential backoff + jitter under the
//! [`ProcessCommConfig::reconnect_deadline`] budget, presents its
//! token, and both sides replay whatever the other had not yet acked;
//! duplicate deliveries are suppressed by sequence number, and a
//! sequence *gap* (a frame from the future) is treated as a torn
//! stream that forces another reconnect, so in-stream loss can never
//! be silently accepted. During a coordinator-side resume the writer
//! stays unpublished until the replay completes — concurrent
//! `send_to` frames are ringed and flushed afterwards, in order — so
//! a fresh frame can never overtake a replayed one on the wire. The
//! supervisor never hears about a transient drop. Only when the
//! deadline expires (or on a v1 connection, or with a zero deadline,
//! or when a retransmit ring overflows) does the transport synthesize
//! [`Message::WorkerDied`] — exactly once per rank — and the existing
//! requeue → pool-refill path fires. Recoveries are recorded in
//! `ugrs_comm_reconnects_total` and
//! `ugrs_comm_frames_retransmitted_total`; anomalies in
//! `ugrs_comm_seq_gaps_total` and `ugrs_comm_ring_overflows_total`.
//!
//! **Liveness.** Every worker runs a heartbeat thread sending `Ping`
//! at a fixed interval, independent of solving, so a busy-but-healthy
//! worker deep in a subtree is never declared dead. A liveness sweep
//! in `recv_timeout` catches the hung-but-connected case: the silent
//! socket is shut down, which for a v2 session merely opens the
//! reconnect window.
//!
//! **Chaos.** With [`ProcessCommConfig::chaos`] set, the worker-side
//! send path consults a deterministic [`FaultInjector`] before every
//! outgoing frame and injects the scheduled delay / drop / duplicate /
//! corruption / partition / kill faults. A partition suppresses writes
//! while it lasts and tears the stream down when it lifts, so the
//! suppressed (ringed) frames are replayed by the resume instead of
//! leaving a sequence gap. The recovery path (replay on resume)
//! bypasses injection, so a seeded schedule perturbs the stream but
//! never the repair.

use crate::chaos::{ChaosConfig, FaultAction, FaultInjector, SplitMix64};
use crate::messages::Message;
use crate::telemetry;
use crate::wire::{self, FrameDecoder, FrameHeader};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Highest frame-format revision this build speaks (v2: checksummed,
/// sequence-numbered, resumable frames). Advertised as `max_protocol`
/// in the hello; the coordinator negotiates `min(max_protocol, 2)`.
pub const PROTOCOL_VERSION: u32 = 2;

/// The base protocol every peer must share for the handshake itself;
/// a different value here drops the connection instead of
/// desynchronizing mid-run.
pub const BASE_PROTOCOL: u32 = 1;

/// Un-acked payloads kept per direction for replay after a reconnect.
/// A ring that reaches capacity means the peer has been unreachable
/// past any useful resume horizon: the session is declared dead loudly
/// (counted in `ugrs_comm_ring_overflows_total`, surfacing the usual
/// requeue path) rather than silently evicting — and thereby losing —
/// the oldest un-acked payload.
const RETRANSMIT_RING_CAP: usize = 1024;

/// Write timeout applied while a retransmit ring is replayed on
/// resume. Both ends replay before their regular read loop resumes; if
/// neither read while both rings exceeded the socket buffers, the two
/// blocking `write_all`s would deadlock. The coordinator additionally
/// starts its reader *before* replaying, so this timeout is the
/// backstop that turns any residual stall into another reconnect
/// instead of a hang.
const REPLAY_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Sentinel sequence number of unsequenced frames (heartbeats and ack
/// carriers): not ringed, not replayed, exempt from duplicate
/// suppression, and they never advance the receiver's `rx_next`.
const UNSEQ: u64 = u64::MAX;

/// Coordinator sends an ack-carrying frame downward after this many
/// received frames, so a chatty worker's retransmit ring stays
/// trimmed even when no protocol traffic flows downward.
const ACK_EVERY: u64 = 64;

/// Tuning knobs of the process transport.
#[derive(Clone, Debug)]
pub struct ProcessCommConfig {
    /// How long the coordinator waits for all workers to connect and
    /// complete the hello/welcome exchange.
    pub handshake_timeout: Duration,
    /// A rank whose last frame (of any kind) is older than this is
    /// declared unreachable even though its socket is still open.
    pub liveness_timeout: Duration,
    /// Interval of the worker-side heartbeat `Ping`.
    pub heartbeat_interval: Duration,
    /// Budget for a broken v2 connection to reconnect and resume its
    /// session before the rank is declared dead. Zero disables
    /// reconnection entirely (every break is an immediate
    /// [`Message::WorkerDied`], the pre-v2 behavior).
    pub reconnect_deadline: Duration,
    /// Deterministic fault-injection schedule applied to the worker's
    /// outgoing frames; `None` (the default) injects nothing.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ProcessCommConfig {
    fn default() -> Self {
        ProcessCommConfig {
            handshake_timeout: Duration::from_secs(20),
            liveness_timeout: Duration::from_secs(15),
            heartbeat_interval: Duration::from_millis(500),
            reconnect_deadline: Duration::from_secs(5),
            chaos: None,
        }
    }
}

impl ProcessCommConfig {
    /// Rejects configurations that would flap ranks: the liveness
    /// timeout must exceed twice the heartbeat interval, otherwise a
    /// single delayed ping gets a healthy rank declared dead.
    pub fn validate(&self) -> Result<(), String> {
        if self.liveness_timeout <= self.heartbeat_interval * 2 {
            return Err(format!(
                "liveness timeout ({:?}) must exceed 2x the heartbeat interval ({:?}); \
                 raise --liveness-ms or lower --heartbeat-ms",
                self.liveness_timeout, self.heartbeat_interval
            ));
        }
        Ok(())
    }
}

fn validated(config: &ProcessCommConfig) -> io::Result<()> {
    config.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))
}

/// Everything that crosses a worker connection after the handshake.
#[derive(serde::Serialize, serde::Deserialize)]
enum WireMsg<Sub, Sol> {
    /// Keep-alive / ack carrier; consumed by the transport, never
    /// surfaced to coordination logic.
    Ping { rank: usize },
    /// A protocol message, verbatim.
    Msg(Message<Sub, Sol>),
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Hello {
    /// Always [`BASE_PROTOCOL`]; kept first so pre-v2 coordinators
    /// accept new workers unchanged.
    protocol: u32,
    rank_hint: Option<usize>,
    /// Highest frame format the worker speaks; absent (old worker)
    /// means v1.
    #[serde(default)]
    max_protocol: Option<u32>,
    /// Present when re-attaching to an existing session.
    #[serde(default)]
    resume: Option<Resume>,
}

#[derive(serde::Serialize, serde::Deserialize, Clone, Copy)]
struct Resume {
    /// The session token from the original welcome.
    token: u64,
    /// Next downward seq the worker expects; the coordinator replays
    /// its ring from here.
    rx_next: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Welcome {
    rank: usize,
    num_workers: usize,
    /// Negotiated frame format; absent (old coordinator) means v1.
    #[serde(default)]
    protocol: Option<u32>,
    /// v2 only: the session identity, and on resume the next upward
    /// seq the coordinator expects (the worker replays from it).
    #[serde(default)]
    session: Option<Session>,
}

#[derive(serde::Serialize, serde::Deserialize, Clone, Copy)]
struct Session {
    token: u64,
    rx_next: u64,
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/// Per-rank connection state. Lock ordering: a `Link` mutex is always
/// taken *before* `Shared::last_heard`, never the other way around.
struct Link {
    /// Write half; `None` while disconnected (or before first claim).
    writer: Option<TcpStream>,
    /// Negotiated format of the current session.
    v2: bool,
    /// Bumped on every (re)connection; readers spawned for an older
    /// epoch must drop everything they hold.
    epoch: u64,
    /// A worker has completed a hello for this rank at least once.
    claimed: bool,
    /// Session identity a reconnecting worker must present.
    token: u64,
    /// Terminal; set at most once, and `WorkerDied` is synthesized by
    /// whoever sets it.
    died: bool,
    /// When the current disconnection began; `None` while connected.
    disconnected_since: Option<Instant>,
    /// Next downward sequence number.
    tx_next: u64,
    /// Un-acked downward payloads for replay on resume.
    ring: VecDeque<(u64, Arc<Vec<u8>>)>,
    /// Next upward seq expected; anything below is a duplicate.
    rx_next: u64,
    /// Upward frames since the last downward ack carrier.
    rx_count: u64,
}

impl Link {
    fn new() -> Self {
        Link {
            writer: None,
            v2: false,
            epoch: 0,
            claimed: false,
            token: 0,
            died: false,
            disconnected_since: None,
            tx_next: 0,
            ring: VecDeque::new(),
            rx_next: 0,
            rx_count: 0,
        }
    }

    fn trim_ring(&mut self, ack: u64) {
        while self.ring.front().is_some_and(|(seq, _)| *seq < ack) {
            self.ring.pop_front();
        }
    }

    fn disconnect(&mut self) {
        if let Some(s) = self.writer.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if self.disconnected_since.is_none() {
            self.disconnected_since = Some(Instant::now());
        }
    }
}

struct Shared {
    links: Vec<Mutex<Link>>,
    last_heard: Mutex<Vec<Instant>>,
    /// Serializes rank selection across concurrent handshake threads.
    claim_lock: Mutex<()>,
    shutdown: AtomicBool,
    liveness_timeout: Duration,
    reconnect_deadline: Duration,
}

fn fresh_token() -> u64 {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let raw = nanos ^ (std::process::id() as u64) << 32 ^ SALT.fetch_add(1, Ordering::Relaxed);
    let mut rng = SplitMix64::new(raw);
    // 53 bits: survives any JSON number path unscathed.
    rng.next_u64() >> 11
}

/// The coordinator's accept socket. Bind first, then spawn workers
/// pointed at [`Self::local_addr`], then collect them with
/// [`Self::accept_workers`].
pub struct ProcessListener {
    listener: TcpListener,
}

impl ProcessListener {
    /// Binds; pass port 0 (e.g. `"127.0.0.1:0"`) to let the OS pick.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(ProcessListener { listener: TcpListener::bind(addr)? })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and handshakes exactly `n` workers, then returns the
    /// coordinator endpoint. Connections with the wrong protocol
    /// version (or that fail to say hello in time) are dropped and do
    /// not count toward `n`. The accept loop keeps running in the
    /// background afterwards, so broken v2 sessions can reconnect for
    /// as long as the endpoint lives.
    pub fn accept_workers<Sub, Sol>(
        self,
        n: usize,
        config: &ProcessCommConfig,
    ) -> io::Result<ProcessLcComm<Sub, Sol>>
    where
        Sub: Serialize + DeserializeOwned + Send + 'static,
        Sol: Serialize + DeserializeOwned + Send + 'static,
    {
        validated(config)?;
        let deadline = Instant::now() + config.handshake_timeout;
        self.listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            links: (0..n).map(|_| Mutex::new(Link::new())).collect(),
            last_heard: Mutex::new(vec![Instant::now(); n]),
            claim_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            liveness_timeout: config.liveness_timeout,
            reconnect_deadline: config.reconnect_deadline,
        });
        let (up_tx, up_rx) = channel();
        spawn_accept_loop::<Sub, Sol>(self.listener, shared.clone(), up_tx.clone());

        // Wait for every rank to be claimed by a completed handshake.
        loop {
            let claimed = shared.links.iter().filter(|l| l.lock().unwrap().claimed).count();
            if claimed == n {
                break;
            }
            if Instant::now() >= deadline {
                shared.shutdown.store(true, Ordering::SeqCst);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("only {claimed}/{n} workers connected in time"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(ProcessLcComm { shared, up_rx, up_tx })
    }
}

/// Persistent accept loop: hands every inbound connection to its own
/// handshake thread and exits when the endpoint shuts down.
fn spawn_accept_loop<Sub, Sol>(
    listener: TcpListener,
    shared: Arc<Shared>,
    up_tx: Sender<Message<Sub, Sol>>,
) where
    Sub: Serialize + DeserializeOwned + Send + 'static,
    Sol: Serialize + DeserializeOwned + Send + 'static,
{
    std::thread::Builder::new()
        .name("lc-accept".into())
        .spawn(move || loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = shared.clone();
                    let up_tx = up_tx.clone();
                    std::thread::Builder::new()
                        .name("lc-handshake".into())
                        .spawn(move || {
                            let _ = handshake_accept(stream, &shared, up_tx);
                        })
                        .expect("spawn lc handshake thread");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        })
        .expect("spawn lc accept thread");
}

/// Performs the coordinator half of the hello/welcome exchange on one
/// connection: claims a rank for a fresh worker, or re-attaches a
/// returning worker to its session and replays the un-acked ring. A
/// rank is claimed only after a complete hello, and released again if
/// the welcome cannot be delivered — a stalling or bogus client can
/// never leave a slot half-registered.
fn handshake_accept<Sub, Sol>(
    stream: TcpStream,
    shared: &Arc<Shared>,
    up_tx: Sender<Message<Sub, Sol>>,
) -> io::Result<()>
where
    Sub: Serialize + DeserializeOwned + Send + 'static,
    Sol: Serialize + DeserializeOwned + Send + 'static,
{
    let n = shared.links.len();
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let hello: Hello = wire::read_msg(&mut reader, &mut dec)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before hello"))?;
    if hello.protocol != BASE_PROTOCOL {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("protocol {} != {}", hello.protocol, BASE_PROTOCOL),
        ));
    }

    if let Some(resume) = hello.resume {
        return handshake_resume(stream, shared, up_tx, resume);
    }

    let v2 = hello.max_protocol.unwrap_or(BASE_PROTOCOL) >= 2;
    let token = fresh_token();

    // Claim a rank (hint when free, else first unclaimed) under the
    // claim lock so concurrent handshakes cannot race to one slot.
    let rank = {
        let _claim = shared.claim_lock.lock().unwrap();
        let free = |r: usize| !shared.links[r].lock().unwrap().claimed;
        let rank = match hello.rank_hint {
            Some(h) if h < n && free(h) => Some(h),
            _ => (0..n).find(|&r| free(r)),
        };
        let Some(rank) = rank else {
            return Err(io::Error::other("all ranks claimed"));
        };
        shared.links[rank].lock().unwrap().claimed = true;
        rank
    };

    let welcome = Welcome {
        rank,
        num_workers: n,
        protocol: Some(if v2 { 2 } else { BASE_PROTOCOL }),
        session: v2.then_some(Session { token, rx_next: 0 }),
    };
    if let Err(e) = wire::write_msg(&mut (&stream), &welcome) {
        // Welcome undeliverable: release the slot for a late,
        // legitimate worker instead of leaving it half-registered.
        shared.links[rank].lock().unwrap().claimed = false;
        return Err(e);
    }

    let epoch = {
        let mut link = shared.links[rank].lock().unwrap();
        link.writer = Some(stream);
        link.v2 = v2;
        link.epoch += 1;
        link.token = token;
        link.died = false;
        link.disconnected_since = None;
        link.tx_next = 0;
        link.ring.clear();
        link.rx_next = 0;
        link.rx_count = 0;
        link.epoch
    };
    shared.last_heard.lock().unwrap()[rank] = Instant::now();
    reader.set_read_timeout(None)?;
    dec.set_v2(v2);
    spawn_lc_reader::<Sub, Sol>(rank, epoch, reader, dec, shared.clone(), up_tx);
    Ok(())
}

/// Re-attaches a returning worker: validates the session token,
/// replays every un-acked downward frame, and restarts the reader.
///
/// Two ordering rules keep the resume safe. The writer stays
/// *unpublished* (`link.writer == None`) until the whole replay is on
/// the wire: a concurrent `send_to` therefore rings its payload
/// without writing, and those frames are flushed — in sequence order,
/// under the link lock — just before publication, so a fresh frame
/// can never overtake a replayed one (the worker would bump its
/// `rx_next` past the replay and discard the rest as duplicates). And
/// the reader is spawned *before* the replay starts: the worker is
/// replaying its own ring at the same time, and with neither side
/// reading, two rings larger than the socket buffers would deadlock
/// both `write_all`s ([`REPLAY_WRITE_TIMEOUT`] backstops the rest).
fn handshake_resume<Sub, Sol>(
    stream: TcpStream,
    shared: &Arc<Shared>,
    up_tx: Sender<Message<Sub, Sol>>,
    resume: Resume,
) -> io::Result<()>
where
    Sub: Serialize + DeserializeOwned + Send + 'static,
    Sol: Serialize + DeserializeOwned + Send + 'static,
{
    use std::io::Write;
    let stale = || io::Error::new(io::ErrorKind::NotFound, "unknown or dead session token");
    let rank = shared
        .links
        .iter()
        .position(|l| {
            let l = l.lock().unwrap();
            l.claimed && l.v2 && !l.died && l.token == resume.token
        })
        .ok_or_else(stale)?;

    let reader = stream.try_clone()?;
    let mut writer = stream;
    writer.set_write_timeout(Some(REPLAY_WRITE_TIMEOUT))?;
    // Marks the link disconnected again (unless superseded) so the
    // reconnect window stays open for the next attempt.
    let fail = |writer: &TcpStream, epoch: u64| {
        let _ = writer.shutdown(Shutdown::Both);
        let mut link = shared.links[rank].lock().unwrap();
        if link.epoch == epoch && link.disconnected_since.is_none() {
            link.disconnected_since = Some(Instant::now());
        }
    };

    let (epoch, replay, rx_next, tx_high) = {
        let mut link = shared.links[rank].lock().unwrap();
        // Double-check under the lock (a racing resume may have won).
        if link.died || link.token != resume.token {
            return Err(stale());
        }
        // Kick out a half-alive predecessor connection, if any.
        if let Some(old) = link.writer.take() {
            let _ = old.shutdown(Shutdown::Both);
        }
        link.epoch += 1;
        let welcome = Welcome {
            rank,
            num_workers: shared.links.len(),
            protocol: Some(2),
            session: Some(Session { token: link.token, rx_next: link.rx_next }),
        };
        wire::write_msg(&mut (&writer), &welcome)?;
        link.trim_ring(resume.rx_next);
        let replay: Vec<(u64, Arc<Vec<u8>>)> = link.ring.iter().cloned().collect();
        // Writer deliberately NOT published yet; see the doc comment.
        link.disconnected_since = None;
        (link.epoch, replay, link.rx_next, link.tx_next)
    };

    // The session is re-attached: count the reconnect now, before the
    // reader can surface any resumed traffic (a test observing the
    // replayed messages must already see the counter).
    let comm_stats = telemetry::comm();
    comm_stats.reconnects.inc();

    // Reader first (see the doc comment), then the replay, outside the
    // link lock: the frames are already ordered and the receiver
    // suppresses any duplicate by seq.
    shared.last_heard.lock().unwrap()[rank] = Instant::now();
    reader.set_read_timeout(None)?;
    let mut dec = FrameDecoder::new();
    dec.set_v2(true);
    spawn_lc_reader::<Sub, Sol>(rank, epoch, reader, dec, shared.clone(), up_tx);
    for (seq, payload) in &replay {
        let framed = wire::frame_v2(payload, FrameHeader { seq: *seq, ack: rx_next });
        if writer.write_all(&framed).and_then(|_| writer.flush()).is_err() {
            fail(&writer, epoch);
            return Ok(());
        }
        comm_stats.frames_retransmitted.inc();
    }

    // Publish the writer, first flushing whatever `send_to` ringed
    // while it was unpublished (every seq from `tx_high` up). The
    // write timeout is still armed, so a stalled peer fails this
    // resume instead of hanging the coordinator on a held link lock.
    {
        let mut link = shared.links[rank].lock().unwrap();
        if link.epoch != epoch || link.died {
            let _ = writer.shutdown(Shutdown::Both);
            return Ok(()); // a newer connection took over mid-replay
        }
        let pending: Vec<(u64, Arc<Vec<u8>>)> =
            link.ring.iter().filter(|(seq, _)| *seq >= tx_high).cloned().collect();
        for (seq, payload) in &pending {
            let framed = wire::frame_v2(payload, FrameHeader { seq: *seq, ack: link.rx_next });
            if writer.write_all(&framed).and_then(|_| writer.flush()).is_err() {
                let _ = writer.shutdown(Shutdown::Both);
                if link.disconnected_since.is_none() {
                    link.disconnected_since = Some(Instant::now());
                }
                return Ok(());
            }
        }
        if writer.set_write_timeout(None).is_err() {
            let _ = writer.shutdown(Shutdown::Both);
            if link.disconnected_since.is_none() {
                link.disconnected_since = Some(Instant::now());
            }
            return Ok(());
        }
        link.writer = Some(writer);
    }
    Ok(())
}

fn spawn_lc_reader<Sub, Sol>(
    rank: usize,
    epoch: u64,
    mut stream: TcpStream,
    mut dec: FrameDecoder,
    shared: Arc<Shared>,
    up_tx: Sender<Message<Sub, Sol>>,
) where
    Sub: Serialize + DeserializeOwned + Send + 'static,
    Sol: Serialize + DeserializeOwned + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("lc-reader-{rank}"))
        .spawn(move || loop {
            match wire::read_frame(&mut stream, &mut dec) {
                Ok(Some((header, payload))) => {
                    // Header bookkeeping under the link lock; decoding
                    // happens outside it.
                    {
                        let mut link = shared.links[rank].lock().unwrap();
                        if link.epoch != epoch {
                            return; // superseded by a reconnection
                        }
                        if link.v2 {
                            if header.seq != UNSEQ {
                                if header.seq < link.rx_next {
                                    telemetry::comm().dup_frames.inc();
                                    drop(link);
                                    shared.last_heard.lock().unwrap()[rank] = Instant::now();
                                    continue;
                                }
                                if header.seq > link.rx_next {
                                    // A gap means frames vanished from
                                    // the byte stream — never silently
                                    // accept it; force a reconnect so
                                    // the resume replays the missing
                                    // range (from our unmoved rx_next).
                                    telemetry::comm().seq_gaps.inc();
                                    drop(link);
                                    let gap = io::Error::new(
                                        io::ErrorKind::ConnectionReset,
                                        "upward sequence gap",
                                    );
                                    lc_reader_on_error(rank, epoch, &shared, &up_tx, Some(gap));
                                    return;
                                }
                                link.rx_next = header.seq + 1;
                            }
                            link.trim_ring(header.ack);
                            link.rx_count += 1;
                            if link.rx_count.is_multiple_of(ACK_EVERY) {
                                let ping = wire::to_payload(&WireMsg::<Sub, Sol>::Ping { rank });
                                let ack = link.rx_next;
                                if let Some(w) = link.writer.as_mut() {
                                    use std::io::Write;
                                    let framed =
                                        wire::frame_v2(&ping, FrameHeader { seq: UNSEQ, ack });
                                    if w.write_all(&framed).and_then(|_| w.flush()).is_err() {
                                        link.disconnect();
                                    }
                                }
                            }
                        }
                    }
                    shared.last_heard.lock().unwrap()[rank] = Instant::now();
                    match wire::decode::<WireMsg<Sub, Sol>>(&payload) {
                        Ok(WireMsg::Ping { .. }) => {}
                        Ok(WireMsg::Msg(msg)) => {
                            if up_tx.send(msg).is_err() {
                                return; // coordinator gone
                            }
                        }
                        Err(e) => {
                            // CRC-clean but unparseable: protocol bug,
                            // not line noise. Kill the rank.
                            lc_reader_on_error(rank, epoch, &shared, &up_tx, Some(e.into()));
                            return;
                        }
                    }
                }
                Ok(None) => {
                    lc_reader_on_error(rank, epoch, &shared, &up_tx, None);
                    return;
                }
                Err(e) => {
                    lc_reader_on_error(rank, epoch, &shared, &up_tx, Some(e));
                    return;
                }
            }
        })
        .expect("spawn lc reader thread");
}

/// Reader-side connection teardown: for a v2 session within budget
/// this merely opens the reconnect window; otherwise the rank dies
/// (exactly once — the `died` flag is checked and set under the link
/// mutex by every path that can report a death).
fn lc_reader_on_error<Sub, Sol>(
    rank: usize,
    epoch: u64,
    shared: &Arc<Shared>,
    up_tx: &Sender<Message<Sub, Sol>>,
    err: Option<io::Error>,
) {
    let fatal = err.as_ref().is_some_and(wire::io_error_is_fatal);
    let mut link = shared.links[rank].lock().unwrap();
    if link.epoch != epoch || link.died || shared.shutdown.load(Ordering::SeqCst) {
        return;
    }
    link.disconnect();
    if fatal || !link.v2 || shared.reconnect_deadline.is_zero() {
        link.died = true;
        drop(link);
        let _ = up_tx.send(Message::WorkerDied { rank });
    }
}

/// Coordinator endpoint of the process transport.
pub struct ProcessLcComm<Sub, Sol> {
    shared: Arc<Shared>,
    up_rx: Receiver<Message<Sub, Sol>>,
    /// Keeps the channel open for reconnecting readers even when every
    /// original reader thread has exited, and lets `send_to`
    /// synthesize `WorkerDied` on retransmit-ring overflow.
    up_tx: Sender<Message<Sub, Sol>>,
}

impl<Sub, Sol> std::fmt::Debug for ProcessLcComm<Sub, Sol> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProcessLcComm(n={})", self.shared.links.len())
    }
}

impl<Sub, Sol> ProcessLcComm<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// Number of connected worker processes.
    pub fn num_workers(&self) -> usize {
        self.shared.links.len()
    }

    /// Sends to one rank. On a v2 session the payload is ringed for
    /// replay first, so `true` means *delivered or will be on resume*;
    /// a failed write merely opens the reconnect window, and `false`
    /// reports a dead rank — including the rank dying right here
    /// because its retransmit ring overflowed (the un-acked backlog
    /// outgrew any useful resume horizon; `WorkerDied` is synthesized
    /// so the supervisor requeues instead of the message silently
    /// vanishing). On a v1 session `false` reports a dead rank or
    /// failed write (the writer is retired), exactly as before.
    pub fn send_to(&self, rank: usize, msg: Message<Sub, Sol>) -> bool {
        use std::io::Write;
        let Some(slot) = self.shared.links.get(rank) else { return false };
        let payload = Arc::new(wire::to_payload(&WireMsg::Msg(msg)));
        let mut link = slot.lock().unwrap();
        if !link.claimed || link.died {
            return false;
        }
        if link.v2 {
            if link.ring.len() >= RETRANSMIT_RING_CAP {
                telemetry::comm().ring_overflows.inc();
                link.died = true;
                link.disconnect();
                drop(link);
                let _ = self.up_tx.send(Message::WorkerDied { rank });
                return false;
            }
            let seq = link.tx_next;
            link.tx_next += 1;
            link.ring.push_back((seq, payload.clone()));
            let framed = wire::frame_v2(&payload, FrameHeader { seq, ack: link.rx_next });
            if let Some(w) = link.writer.as_mut() {
                if w.write_all(&framed).and_then(|_| w.flush()).is_err() {
                    link.disconnect();
                }
            }
            true
        } else {
            let Some(w) = link.writer.as_mut() else { return false };
            match w.write_all(&wire::frame_v1(&payload)).and_then(|_| w.flush()) {
                Ok(()) => true,
                Err(_) => {
                    link.writer = None;
                    false
                }
            }
        }
    }

    /// Receives the next upward message, sweeping liveness first: a
    /// rank silent past the timeout has its socket shut down, which on
    /// a v2 session opens the reconnect window; a rank disconnected
    /// past the reconnect deadline (immediately, for v1 or a zero
    /// deadline) is reported as [`Message::WorkerDied`] exactly once.
    pub fn recv_timeout(&self, d: Duration) -> Option<Message<Sub, Sol>> {
        let n = self.shared.links.len();
        for rank in 0..n {
            let mut link = self.shared.links[rank].lock().unwrap();
            if !link.claimed || link.died {
                continue;
            }
            if link.writer.is_some() {
                let heard = self.shared.last_heard.lock().unwrap()[rank];
                if heard.elapsed() > self.shared.liveness_timeout {
                    link.disconnect();
                    if !link.v2 || self.shared.reconnect_deadline.is_zero() {
                        link.died = true;
                        return Some(Message::WorkerDied { rank });
                    }
                }
            } else if let Some(since) = link.disconnected_since {
                if since.elapsed() > self.shared.reconnect_deadline {
                    link.died = true;
                    return Some(Message::WorkerDied { rank });
                }
            }
        }
        match self.up_rx.recv_timeout(d) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

impl<Sub, Sol> Drop for ProcessLcComm<Sub, Sol> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for slot in &self.shared.links {
            if let Ok(mut link) = slot.lock() {
                if let Some(s) = link.writer.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Worker-side connection state behind one mutex: the socket, the
/// session identity, both sequence spaces, the retransmit ring, and
/// the fault injector. Everything that writes to the socket goes
/// through [`send_locked`] while holding this.
struct WorkerInner {
    /// Write half; `None` while disconnected.
    stream: Option<TcpStream>,
    v2: bool,
    token: u64,
    /// Next upward sequence number.
    tx_next: u64,
    /// Un-acked upward payloads for replay on resume.
    ring: VecDeque<(u64, Arc<Vec<u8>>)>,
    /// Next downward seq expected; anything below is a duplicate.
    rx_next: u64,
    /// Chaos partition in force: writes are suppressed (the socket
    /// stays open and silent) until this instant. When it lifts the
    /// stream is torn down so the resume replays the suppressed
    /// (ringed) frames instead of leaving a sequence gap.
    partition_until: Option<Instant>,
    chaos: Option<FaultInjector>,
    /// The reader gave up for good; sends fail from here on.
    dead: bool,
}

impl WorkerInner {
    fn drop_stream(&mut self) {
        if let Some(s) = self.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// Writes one payload under the inner lock, applying sequencing,
/// ring-buffering (reliable frames only), the partition gate, and one
/// scheduled fault. Write failures silently drop the stream — the
/// reader notices and runs the reconnect, and ringed payloads are
/// replayed on resume. A full retransmit ring kills the session
/// instead of evicting (losing) the oldest un-acked payload.
fn send_locked(inner: &mut WorkerInner, payload: Arc<Vec<u8>>, reliable: bool) {
    use std::io::Write;
    let framed = if inner.v2 {
        let seq = if reliable {
            if inner.ring.len() >= RETRANSMIT_RING_CAP {
                // Unreachable past any useful resume horizon: die
                // loudly (the coordinator's reconnect deadline then
                // requeues the rank) instead of silently evicting the
                // oldest un-acked payload.
                telemetry::comm().ring_overflows.inc();
                inner.dead = true;
                inner.drop_stream();
                return;
            }
            let seq = inner.tx_next;
            inner.tx_next += 1;
            inner.ring.push_back((seq, payload.clone()));
            seq
        } else {
            UNSEQ
        };
        wire::frame_v2(&payload, FrameHeader { seq, ack: inner.rx_next })
    } else {
        wire::frame_v1(&payload)
    };
    if let Some(until) = inner.partition_until {
        if Instant::now() < until {
            return; // partitioned: sequenced payloads wait in the ring
        }
        // The partition lifts with sequenced frames suppressed (ringed
        // but never written): writing fresh frames now would open a
        // seq gap past the suppressed range. Tear the stream down
        // instead — the reader reconnects and the resume replays
        // everything, in order.
        inner.partition_until = None;
        inner.drop_stream();
        return;
    }
    if inner.stream.is_none() {
        return; // disconnected: the reconnect path replays the ring
    }
    let write = |inner: &mut WorkerInner, bytes: &[u8]| {
        if let Some(s) = inner.stream.as_mut() {
            if s.write_all(bytes).and_then(|_| s.flush()).is_err() {
                inner.drop_stream();
            }
        }
    };
    match inner.chaos.as_mut().map(|c| c.on_frame()).unwrap_or(FaultAction::Pass) {
        FaultAction::Pass => write(inner, &framed),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            write(inner, &framed);
        }
        FaultAction::Drop => {
            // TCP never loses a frame mid-stream silently; a "drop"
            // is a torn connection. The payload stays ringed and is
            // replayed on resume.
            inner.drop_stream();
        }
        FaultAction::Duplicate => {
            write(inner, &framed);
            write(inner, &framed);
        }
        FaultAction::Corrupt { bit } => {
            let mut bad = framed.clone();
            let b = (bit % (bad.len() as u64 * 8)) as usize;
            bad[b / 8] ^= 1 << (b % 8);
            write(inner, &bad);
        }
        FaultAction::Partition(d) => {
            inner.partition_until = Some(Instant::now() + d);
        }
        FaultAction::Kill => {
            // Hard worker loss; only meaningful in spawned worker
            // processes (the chaos e2e suite), never in-process.
            std::process::exit(137);
        }
    }
}

/// Connects to the coordinator, retrying until it is listening (worker
/// processes may win the race against the coordinator's bind), and
/// completes the handshake. The returned endpoint already has its
/// heartbeat running, and on a v2 session its reader owns the
/// reconnect-and-resume policy.
pub fn connect_worker<Sub, Sol>(
    addr: &str,
    rank_hint: Option<usize>,
    config: &ProcessCommConfig,
) -> io::Result<ProcessWorkerComm<Sub, Sol>>
where
    Sub: Serialize + DeserializeOwned + Send + 'static,
    Sol: Serialize + DeserializeOwned + Send + 'static,
{
    validated(config)?;
    let deadline = Instant::now() + config.handshake_timeout;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    wire::write_msg(
        &mut (&stream),
        &Hello {
            protocol: BASE_PROTOCOL,
            rank_hint,
            max_protocol: Some(PROTOCOL_VERSION),
            resume: None,
        },
    )?;
    let mut reader = stream.try_clone()?;
    let mut dec = FrameDecoder::new();
    let welcome: Welcome = wire::read_msg(&mut reader, &mut dec)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "coordinator closed before welcome")
    })?;
    stream.set_read_timeout(None)?;

    let rank = welcome.rank;
    let v2 = welcome.protocol.unwrap_or(BASE_PROTOCOL) >= 2 && welcome.session.is_some();
    let token = welcome.session.map(|s| s.token).unwrap_or(0);
    dec.set_v2(v2);

    let inner = Arc::new(Mutex::new(WorkerInner {
        stream: Some(stream),
        v2,
        token,
        tx_next: 0,
        ring: VecDeque::new(),
        rx_next: 0,
        partition_until: None,
        chaos: config.chaos.as_ref().map(|plan| plan.injector()),
        dead: false,
    }));
    let shutdown = Arc::new(AtomicBool::new(false));
    let (down_tx, down_rx) = channel();
    spawn_worker_reader::<Sub, Sol>(
        rank,
        addr.to_string(),
        config.clone(),
        reader,
        dec,
        inner.clone(),
        shutdown.clone(),
        down_tx,
    );
    spawn_heartbeat::<Sub, Sol>(rank, inner.clone(), shutdown.clone(), config.heartbeat_interval);

    Ok(ProcessWorkerComm { rank, inner, down_rx, shutdown })
}

/// The worker's read loop plus, on a v2 session, the reconnect-and-
/// resume policy: on any retryable connection failure it redials with
/// exponential backoff + jitter under the reconnect deadline, resumes
/// the session by token, replays its un-acked ring (bypassing chaos —
/// recovery must be deterministic), and carries on. Returning from
/// this thread drops `down_tx`, which is how `recv()` learns the
/// connection is gone for good.
#[allow(clippy::too_many_arguments)]
fn spawn_worker_reader<Sub, Sol>(
    rank: usize,
    addr: String,
    config: ProcessCommConfig,
    stream: TcpStream,
    dec: FrameDecoder,
    inner: Arc<Mutex<WorkerInner>>,
    shutdown: Arc<AtomicBool>,
    down_tx: Sender<Message<Sub, Sol>>,
) where
    Sub: Serialize + DeserializeOwned + Send + 'static,
    Sol: Serialize + DeserializeOwned + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("worker-reader-{rank}"))
        .spawn(move || {
            let mut stream = stream;
            let mut dec = dec;
            loop {
                let err = match wire::read_frame(&mut stream, &mut dec) {
                    Ok(Some((header, payload))) => {
                        let mut gap = false;
                        {
                            let mut g = inner.lock().unwrap();
                            if g.v2 {
                                if header.seq != UNSEQ {
                                    if header.seq < g.rx_next {
                                        telemetry::comm().dup_frames.inc();
                                        continue;
                                    }
                                    // A gap is in-stream loss: never
                                    // accept it silently; reconnect and
                                    // let the resume replay the missing
                                    // downward range.
                                    gap = header.seq > g.rx_next;
                                    if !gap {
                                        g.rx_next = header.seq + 1;
                                    }
                                }
                                if !gap {
                                    while g.ring.front().is_some_and(|(s, _)| *s < header.ack) {
                                        g.ring.pop_front();
                                    }
                                }
                            }
                        }
                        if gap {
                            telemetry::comm().seq_gaps.inc();
                            Some(io::Error::new(
                                io::ErrorKind::ConnectionReset,
                                "downward sequence gap",
                            ))
                        } else {
                            match wire::decode::<WireMsg<Sub, Sol>>(&payload) {
                                Ok(WireMsg::Ping { .. }) => continue,
                                Ok(WireMsg::Msg(msg)) => {
                                    if down_tx.send(msg).is_err() {
                                        return; // endpoint dropped
                                    }
                                    continue;
                                }
                                Err(e) => Some(io::Error::from(e)),
                            }
                        }
                    }
                    Ok(None) => None,
                    Err(e) => Some(e),
                };
                // Connection-level failure (or fatal codec error).
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let fatal = err.as_ref().is_some_and(wire::io_error_is_fatal);
                let (v2, dead) = {
                    let g = inner.lock().unwrap();
                    (g.v2, g.dead)
                };
                if fatal || !v2 || dead || config.reconnect_deadline.is_zero() {
                    let mut g = inner.lock().unwrap();
                    g.drop_stream();
                    g.dead = true;
                    return;
                }
                match reconnect_worker(rank, &addr, &config, &inner, &shutdown) {
                    Some((s, d)) => {
                        stream = s;
                        dec = d;
                    }
                    None => {
                        let mut g = inner.lock().unwrap();
                        g.drop_stream();
                        g.dead = true;
                        return;
                    }
                }
            }
        })
        .expect("spawn worker reader thread");
}

/// Redials and resumes the session; `None` when the deadline budget
/// runs out (the rank then dies and the coordinator requeues).
fn reconnect_worker(
    rank: usize,
    addr: &str,
    config: &ProcessCommConfig,
    inner: &Arc<Mutex<WorkerInner>>,
    shutdown: &Arc<AtomicBool>,
) -> Option<(TcpStream, FrameDecoder)> {
    use std::io::Write;
    let (token, rx_next) = {
        let mut g = inner.lock().unwrap();
        g.drop_stream();
        (g.token, g.rx_next)
    };
    let deadline = Instant::now() + config.reconnect_deadline;
    let mut jitter = SplitMix64::new(token ^ rank as u64);
    let mut attempt = 0u32;
    'redial: loop {
        if attempt > 0 {
            let base = 50u64.saturating_mul(1u64 << attempt.min(5)).min(2000);
            let backoff = Duration::from_millis(base + jitter.next_u64() % (base / 2 + 1));
            let remaining = deadline.saturating_duration_since(Instant::now());
            std::thread::sleep(backoff.min(remaining));
        }
        attempt += 1;
        if shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
            return None;
        }
        let Ok(stream) = TcpStream::connect(addr) else { continue };
        stream.set_nodelay(true).ok();
        if stream.set_read_timeout(Some(Duration::from_secs(5))).is_err() {
            continue;
        }
        let hello = Hello {
            protocol: BASE_PROTOCOL,
            rank_hint: Some(rank),
            max_protocol: Some(PROTOCOL_VERSION),
            resume: Some(Resume { token, rx_next }),
        };
        if wire::write_msg(&mut (&stream), &hello).is_err() {
            continue;
        }
        let mut reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => continue,
        };
        let mut hs_dec = FrameDecoder::new();
        let welcome: Welcome = match wire::read_msg(&mut reader, &mut hs_dec) {
            Ok(Some(w)) => w,
            _ => continue, // coordinator refused the token or hung up
        };
        let Some(session) = welcome.session else { continue };
        if stream.set_read_timeout(None).is_err() {
            continue;
        }
        let mut g = inner.lock().unwrap();
        if g.dead {
            return None; // e.g. ring overflow while we were redialing
        }
        // Replay everything the coordinator has not acked, in order,
        // chaos-free: the schedule perturbs fresh traffic, never the
        // repair itself. The write timeout bounds the replay — the
        // coordinator is replaying its own ring concurrently, and a
        // stalled peer must fail us into another redial, not hang the
        // worker on a held inner lock.
        while g.ring.front().is_some_and(|(s, _)| *s < session.rx_next) {
            g.ring.pop_front();
        }
        let replay: Vec<(u64, Arc<Vec<u8>>)> = g.ring.iter().cloned().collect();
        let ack = g.rx_next;
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        if writer.set_write_timeout(Some(REPLAY_WRITE_TIMEOUT)).is_err() {
            continue;
        }
        for (seq, payload) in &replay {
            let framed = wire::frame_v2(payload, FrameHeader { seq: *seq, ack });
            if writer.write_all(&framed).and_then(|_| writer.flush()).is_err() {
                continue 'redial;
            }
        }
        if writer.set_write_timeout(None).is_err() {
            continue 'redial;
        }
        g.stream = Some(writer);
        g.partition_until = None;
        let mut dec = FrameDecoder::new();
        dec.set_v2(true);
        return Some((reader, dec));
    }
}

fn spawn_heartbeat<Sub, Sol>(
    rank: usize,
    inner: Arc<Mutex<WorkerInner>>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) where
    Sub: Serialize + Send + 'static,
    Sol: Serialize + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("heartbeat-{rank}"))
        .spawn(move || loop {
            std::thread::sleep(interval);
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let ping = Arc::new(wire::to_payload(&WireMsg::<Sub, Sol>::Ping { rank }));
            let mut g = inner.lock().unwrap();
            if g.dead {
                return;
            }
            if !g.v2 && g.stream.is_none() {
                return; // v1: connection gone for good
            }
            send_locked(&mut g, ping, false);
        })
        .expect("spawn heartbeat thread");
}

/// Worker endpoint of the process transport.
pub struct ProcessWorkerComm<Sub, Sol> {
    rank: usize,
    inner: Arc<Mutex<WorkerInner>>,
    down_rx: Receiver<Message<Sub, Sol>>,
    shutdown: Arc<AtomicBool>,
}

impl<Sub, Sol> ProcessWorkerComm<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// This worker's rank as assigned in the handshake.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Non-blocking receive of the next coordinator message.
    pub fn try_recv(&self) -> Option<Message<Sub, Sol>> {
        self.down_rx.try_recv().ok()
    }

    /// Blocking receive; `None` when the connection is gone for good
    /// (on a v2 session: only after the reconnect budget ran out).
    pub fn recv(&self) -> Option<Message<Sub, Sol>> {
        self.down_rx.recv().ok()
    }

    /// Sends a message upward. On a v2 session the payload is ringed
    /// before the write, so `true` means *delivered or will be on
    /// resume*; `false` only once the session is dead for good —
    /// including dying right here because the retransmit ring
    /// overflowed (this payload was *not* ringed).
    pub fn send(&self, msg: Message<Sub, Sol>) -> bool {
        let payload = Arc::new(wire::to_payload(&WireMsg::Msg(msg)));
        let mut g = self.inner.lock().unwrap();
        if g.dead {
            return false;
        }
        if g.v2 {
            send_locked(&mut g, payload, true);
            !g.dead
        } else {
            let before = g.stream.is_some();
            send_locked(&mut g, payload, true);
            before && g.stream.is_some()
        }
    }

    /// Test hook: tears the TCP connection down underneath the
    /// transport (as a mid-run network fault would) without touching
    /// any session state, so tests can exercise the reconnect-and-
    /// resume path deterministically and in-process.
    #[cfg(test)]
    pub(crate) fn test_break_connection(&self) {
        if let Some(s) = self.inner.lock().unwrap().stream.as_ref() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl<Sub, Sol> Drop for ProcessWorkerComm<Sub, Sol> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // `shutdown` acts on the socket itself, past every `try_clone`
        // dup the reader and heartbeat threads hold — they unblock with
        // EOF/EPIPE and exit, and the coordinator sees the hang-up at
        // once (even when the worker is dying abnormally).
        if let Ok(mut g) = self.inner.lock() {
            g.drop_stream();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ProcessCommConfig {
        ProcessCommConfig {
            handshake_timeout: Duration::from_secs(10),
            liveness_timeout: Duration::from_secs(30),
            heartbeat_interval: Duration::from_millis(100),
            reconnect_deadline: Duration::from_millis(500),
            chaos: None,
        }
    }

    /// Full in-process exercise of the socket path: handshake with rank
    /// hints, both message directions, and worker-death synthesis.
    #[test]
    fn handshake_roundtrip_and_death_detection() {
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = config();

        let mut joins = Vec::new();
        for rank in 0..2usize {
            let addr = addr.clone();
            let cfg = cfg.clone();
            joins.push(std::thread::spawn(move || {
                let comm = connect_worker::<u32, u32>(&addr, Some(rank), &cfg).unwrap();
                assert_eq!(comm.rank(), rank);
                assert!(comm.send(Message::Status {
                    rank,
                    dual_bound: rank as f64,
                    open: 1,
                    nodes: 2
                }));
                // Wait for an echo from the coordinator, then hang up
                // (rank 1 hangs up without being told — "dies").
                if rank == 0 {
                    match comm.recv() {
                        Some(Message::Terminate) => {}
                        other => panic!("expected terminate, got {other:?}"),
                    }
                }
            }));
        }

        let lc = listener.accept_workers::<u32, u32>(2, &cfg).unwrap();
        assert_eq!(lc.num_workers(), 2);
        let mut status_ranks = Vec::new();
        let mut died = Vec::new();
        // Expect two statuses and one death notice (rank 1 exits after
        // sending its status; its deliberate hang-up exhausts the
        // reconnect budget and only then surfaces as a death).
        let deadline = Instant::now() + Duration::from_secs(10);
        while (status_ranks.len() < 2 || died.is_empty()) && Instant::now() < deadline {
            match lc.recv_timeout(Duration::from_millis(50)) {
                Some(Message::Status { rank, .. }) => status_ranks.push(rank),
                Some(Message::WorkerDied { rank }) => died.push(rank),
                _ => {}
            }
        }
        status_ranks.sort_unstable();
        assert_eq!(status_ranks, vec![0, 1]);
        assert_eq!(died, vec![1]);

        assert!(lc.send_to(0, Message::Terminate));
        for j in joins {
            j.join().unwrap();
        }
        // Rank 1 is dead: sends must report failure.
        assert!(!lc.send_to(1, Message::Terminate));
    }

    #[test]
    fn protocol_mismatch_is_rejected() {
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = ProcessCommConfig { handshake_timeout: Duration::from_millis(600), ..config() };

        let bad = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            wire::write_msg(
                &mut (&stream),
                &Hello {
                    protocol: BASE_PROTOCOL + 98,
                    rank_hint: None,
                    max_protocol: None,
                    resume: None,
                },
            )
            .unwrap();
            // The coordinator must drop us without a welcome.
            let mut reader = stream.try_clone().unwrap();
            reader.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut dec = FrameDecoder::new();
            assert!(matches!(
                wire::read_msg::<Welcome, _>(&mut reader, &mut dec),
                Ok(None) | Err(_)
            ));
        });

        // With only a bad client around, the accept must time out.
        let err = listener.accept_workers::<u32, u32>(1, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        bad.join().unwrap();
    }

    #[test]
    fn misconfigured_liveness_is_rejected_up_front() {
        let cfg = ProcessCommConfig {
            liveness_timeout: Duration::from_millis(150),
            heartbeat_interval: Duration::from_millis(100),
            ..config()
        };
        let msg = cfg.validate().unwrap_err();
        assert!(msg.contains("liveness"), "unhelpful message: {msg}");
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let err = listener.accept_workers::<u32, u32>(1, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    /// The liveness sweep must report each silent rank dead exactly
    /// once — the doc comment has always claimed it; this asserts it.
    /// The clients handshake as v1 (no `max_protocol`), so silence is
    /// immediately terminal.
    #[test]
    fn liveness_sweep_reports_each_silent_rank_exactly_once() {
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = ProcessCommConfig {
            liveness_timeout: Duration::from_millis(300),
            heartbeat_interval: Duration::from_millis(100),
            ..config()
        };

        // Two raw v1 clients that say hello and then go silent while
        // keeping their sockets open (the hung-but-connected case the
        // sweep exists for). They run on threads because the welcome
        // only arrives once `accept_workers` below is pumping.
        let (welcome_tx, welcome_rx) = channel::<(usize, Option<u32>, bool)>();
        for rank in 0..2usize {
            let welcome_tx = welcome_tx.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                wire::write_msg(
                    &mut (&stream),
                    &Hello {
                        protocol: BASE_PROTOCOL,
                        rank_hint: Some(rank),
                        max_protocol: None,
                        resume: None,
                    },
                )
                .unwrap();
                let mut reader = stream.try_clone().unwrap();
                let mut dec = FrameDecoder::new();
                let welcome: Welcome = wire::read_msg(&mut reader, &mut dec).unwrap().unwrap();
                welcome_tx
                    .send((welcome.rank, welcome.protocol, welcome.session.is_some()))
                    .unwrap();
                // Keep the socket open and silent well past the test.
                std::thread::sleep(Duration::from_secs(30));
                drop(stream);
            });
        }

        let lc = listener.accept_workers::<u32, u32>(2, &cfg).unwrap();
        let mut welcomed = Vec::new();
        for _ in 0..2 {
            let (rank, protocol, has_session) =
                welcome_rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(protocol, Some(BASE_PROTOCOL));
            assert!(!has_session, "a v1 worker must not be handed a session");
            welcomed.push(rank);
        }
        welcomed.sort_unstable();
        assert_eq!(welcomed, vec![0, 1]);
        let mut died = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Some(Message::WorkerDied { rank }) = lc.recv_timeout(Duration::from_millis(20)) {
                died.push(rank);
            }
            if died.len() == 2 {
                break;
            }
        }
        died.sort_unstable();
        assert_eq!(died, vec![0, 1], "each silent rank must die exactly once");
        // Keep sweeping: no rank may be reported a second time.
        let settle = Instant::now() + Duration::from_secs(1);
        while Instant::now() < settle {
            assert!(
                !matches!(
                    lc.recv_timeout(Duration::from_millis(20)),
                    Some(Message::WorkerDied { .. })
                ),
                "a rank died twice"
            );
        }
    }

    /// A client that stalls mid-hello must not block the accept path
    /// or pin a rank: a late legitimate worker still claims rank 0
    /// well within the handshake deadline.
    #[test]
    fn stalled_hello_does_not_block_a_late_worker() {
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = ProcessCommConfig { handshake_timeout: Duration::from_secs(3), ..config() };

        // Connects and never says hello. Its 5s read timeout outlives
        // the whole 3s handshake budget.
        let stalled = TcpStream::connect(&addr).unwrap();

        let worker = {
            let addr = addr.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                let comm = connect_worker::<u32, u32>(&addr, Some(0), &cfg).unwrap();
                assert_eq!(comm.rank(), 0);
                assert!(matches!(comm.recv(), Some(Message::Terminate)));
            })
        };

        let started = Instant::now();
        let lc = listener.accept_workers::<u32, u32>(1, &cfg).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "stalled client must not consume the handshake budget"
        );
        assert!(lc.send_to(0, Message::Terminate));
        worker.join().unwrap();
        drop(stalled);
    }

    /// The tentpole in one room: a torn connection mid-run resumes the
    /// session — messages sent before, during, and after the break all
    /// arrive exactly once, nobody is reported dead, and the reconnect
    /// is visible in telemetry.
    #[test]
    fn broken_connection_resumes_without_a_death() {
        let reconnects_before = telemetry::comm().reconnects.get();
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = ProcessCommConfig { reconnect_deadline: Duration::from_secs(10), ..config() };

        let (incumbent_tx, incumbent_rx) = channel::<f64>();
        let worker = {
            let addr = addr.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let comm = connect_worker::<u32, u32>(&addr, Some(0), &cfg).unwrap();
                assert!(comm.send(Message::Status { rank: 0, dual_bound: 1.0, open: 1, nodes: 1 }));
                // Tear the TCP connection down underneath the session.
                comm.test_break_connection();
                // Sends while broken are ringed and replayed on resume.
                assert!(comm.send(Message::Status { rank: 0, dual_bound: 2.0, open: 1, nodes: 2 }));
                loop {
                    match comm.recv() {
                        Some(Message::Incumbent { obj, .. }) => incumbent_tx.send(obj).unwrap(),
                        Some(Message::Terminate) => return,
                        Some(_) => {}
                        None => panic!("session died instead of resuming"),
                    }
                }
            })
        };

        let lc = listener.accept_workers::<u32, u32>(1, &cfg).unwrap();
        let mut bounds = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while bounds.len() < 2 && Instant::now() < deadline {
            match lc.recv_timeout(Duration::from_millis(50)) {
                Some(Message::Status { dual_bound, .. }) => bounds.push(dual_bound),
                Some(Message::WorkerDied { rank }) => {
                    panic!("rank {rank} was declared dead during a recoverable break")
                }
                _ => {}
            }
        }
        assert_eq!(bounds, vec![1.0, 2.0], "both statuses exactly once, in order");
        assert!(
            telemetry::comm().reconnects.get() > reconnects_before,
            "the resume must be counted"
        );

        // Downward traffic flows on the resumed connection too.
        assert!(lc.send_to(0, Message::Incumbent { sol: 7, obj: 42.0 }));
        assert_eq!(incumbent_rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42.0);
        assert!(lc.send_to(0, Message::Terminate));
        worker.join().unwrap();
    }

    /// Regression for the resume/`send_to` race: fresh frames sent
    /// while a resume replay is in flight must never overtake the
    /// replay on the wire (the worker would run its `rx_next` past
    /// the replayed range and discard it as duplicates). The worker
    /// tears the connection down repeatedly mid-stream; every message
    /// must still arrive exactly once, in order.
    #[test]
    fn downward_stream_survives_repeated_breaks_in_order() {
        const N: usize = 200;
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = ProcessCommConfig { reconnect_deadline: Duration::from_secs(10), ..config() };

        let worker = {
            let addr = addr.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let comm = connect_worker::<u32, u32>(&addr, Some(0), &cfg).unwrap();
                let mut objs = Vec::new();
                while objs.len() < N {
                    match comm.recv() {
                        Some(Message::Incumbent { obj, .. }) => {
                            objs.push(obj as usize);
                            if objs.len() % 25 == 0 {
                                comm.test_break_connection();
                            }
                        }
                        Some(_) => {}
                        None => panic!("session died mid-stream"),
                    }
                }
                objs
            })
        };

        let lc = listener.accept_workers::<u32, u32>(1, &cfg).unwrap();
        for i in 0..N {
            assert!(lc.send_to(0, Message::Incumbent { sol: 0, obj: i as f64 }));
            // Keep the sweep running so an (unexpected) death surfaces.
            if let Some(Message::WorkerDied { rank }) = lc.recv_timeout(Duration::from_millis(1)) {
                panic!("rank {rank} died during a recoverable break");
            }
        }
        let objs = worker.join().unwrap();
        assert_eq!(objs, (0..N).collect::<Vec<_>>(), "exactly once, in order");
    }

    /// A frame from the future (sequence gap) means bytes vanished
    /// in-stream. The coordinator must not run its `rx_next` past the
    /// hole: it tears the connection down (no delivery, no death) and
    /// a resume of the same session still expects the missing seq.
    #[test]
    fn coordinator_treats_a_seq_gap_as_a_torn_stream() {
        use std::io::Write;
        let gaps_before = telemetry::comm().seq_gaps.get();
        let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = ProcessCommConfig { reconnect_deadline: Duration::from_secs(10), ..config() };

        let (done_tx, done_rx) = channel::<()>();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            wire::write_msg(
                &mut (&stream),
                &Hello {
                    protocol: BASE_PROTOCOL,
                    rank_hint: Some(0),
                    max_protocol: Some(PROTOCOL_VERSION),
                    resume: None,
                },
            )
            .unwrap();
            let mut reader = stream.try_clone().unwrap();
            let mut dec = FrameDecoder::new();
            let welcome: Welcome = wire::read_msg(&mut reader, &mut dec).unwrap().unwrap();
            let session = welcome.session.expect("v2 handshake must hand out a session");

            // Seq 5 while the coordinator expects 0: frames 0..5 are
            // missing from the stream.
            let payload = wire::to_payload(&WireMsg::<u32, u32>::Msg(Message::Status {
                rank: 0,
                dual_bound: 9.0,
                open: 1,
                nodes: 1,
            }));
            (&stream).write_all(&wire::frame_v2(&payload, FrameHeader { seq: 5, ack: 0 })).unwrap();

            // The coordinator must hang up on us...
            reader.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            dec.set_v2(true);
            assert!(
                matches!(wire::read_msg::<Welcome, _>(&mut reader, &mut dec), Ok(None) | Err(_)),
                "a seq gap must tear the connection down"
            );

            // ...but the session survives: a resume is accepted and
            // still expects seq 0 (rx_next never moved past the hole).
            let stream2 = TcpStream::connect(addr).unwrap();
            wire::write_msg(
                &mut (&stream2),
                &Hello {
                    protocol: BASE_PROTOCOL,
                    rank_hint: Some(0),
                    max_protocol: Some(PROTOCOL_VERSION),
                    resume: Some(Resume { token: session.token, rx_next: 0 }),
                },
            )
            .unwrap();
            let mut reader2 = stream2.try_clone().unwrap();
            let mut dec2 = FrameDecoder::new();
            let welcome2: Welcome = wire::read_msg(&mut reader2, &mut dec2).unwrap().unwrap();
            assert_eq!(
                welcome2.session.expect("resume must return the session").rx_next,
                0,
                "the gap frame must not have advanced rx_next"
            );
            done_tx.send(()).unwrap();
        });

        let lc = listener.accept_workers::<u32, u32>(1, &cfg).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut done = false;
        while !done && Instant::now() < deadline {
            match lc.recv_timeout(Duration::from_millis(20)) {
                Some(Message::Status { .. }) => panic!("the gap frame was delivered"),
                Some(Message::WorkerDied { rank }) => {
                    panic!("rank {rank} died; a gap must only reopen the reconnect window")
                }
                _ => {}
            }
            done = done_rx.try_recv().is_ok();
        }
        assert!(done, "client never completed the gap + resume exchange");
        assert!(telemetry::comm().seq_gaps.get() > gaps_before, "the gap must be counted");
        client.join().unwrap();
    }

    /// Overflowing the coordinator's retransmit ring must kill the
    /// rank loudly (`WorkerDied`, failed send, counted) — never
    /// silently evict an un-acked payload that a resume would then
    /// skip.
    #[test]
    fn coordinator_ring_overflow_kills_the_rank_loudly() {
        let shared = Arc::new(Shared {
            links: vec![Mutex::new(Link::new())],
            last_heard: Mutex::new(vec![Instant::now()]),
            claim_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            liveness_timeout: Duration::from_secs(30),
            reconnect_deadline: Duration::from_secs(30),
        });
        {
            let mut link = shared.links[0].lock().unwrap();
            link.claimed = true;
            link.v2 = true;
            // Disconnected: every send rings its payload un-acked.
            link.disconnected_since = Some(Instant::now());
        }
        let (up_tx, up_rx) = channel();
        let lc = ProcessLcComm::<u32, u32> { shared, up_rx, up_tx };

        let overflows_before = telemetry::comm().ring_overflows.get();
        for _ in 0..RETRANSMIT_RING_CAP {
            assert!(lc.send_to(0, Message::Terminate), "ringed sends report success");
        }
        assert!(!lc.send_to(0, Message::Terminate), "the overflowing send must fail");
        assert!(
            matches!(
                lc.recv_timeout(Duration::from_millis(100)),
                Some(Message::WorkerDied { rank: 0 })
            ),
            "overflow must surface as WorkerDied"
        );
        assert!(!lc.send_to(0, Message::Terminate), "the rank must stay dead");
        assert!(telemetry::comm().ring_overflows.get() > overflows_before);
    }

    /// The worker-side ring behaves the same: at capacity the session
    /// dies, the stream drops, and no ringed payload is evicted.
    #[test]
    fn worker_ring_overflow_kills_the_session() {
        let mut inner = WorkerInner {
            stream: None,
            v2: true,
            token: 1,
            tx_next: 0,
            ring: VecDeque::new(),
            rx_next: 0,
            partition_until: None,
            chaos: None,
            dead: false,
        };
        let payload = Arc::new(wire::to_payload(&WireMsg::<u32, u32>::Ping { rank: 0 }));
        for _ in 0..RETRANSMIT_RING_CAP {
            send_locked(&mut inner, payload.clone(), true);
        }
        assert!(!inner.dead);
        send_locked(&mut inner, payload.clone(), true);
        assert!(inner.dead, "overflow must kill the session loudly");
        assert_eq!(inner.ring.len(), RETRANSMIT_RING_CAP, "no payload may be evicted");
    }

    /// When a chaos partition lifts, the suppressed (ringed but never
    /// written) frames would sit behind any fresh write as a sequence
    /// gap. The lift must tear the stream down so the resume replays
    /// them in order instead.
    #[test]
    fn lifted_partition_tears_the_stream_for_replay() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_peer, _) = listener.accept().unwrap();
        let mut inner = WorkerInner {
            stream: Some(stream),
            v2: true,
            token: 1,
            tx_next: 0,
            ring: VecDeque::new(),
            rx_next: 0,
            partition_until: Some(Instant::now() + Duration::from_millis(10)),
            chaos: None,
            dead: false,
        };
        let payload = Arc::new(wire::to_payload(&WireMsg::<u32, u32>::Ping { rank: 0 }));
        send_locked(&mut inner, payload.clone(), true); // suppressed, ringed
        assert!(inner.stream.is_some(), "the socket stays open while partitioned");
        std::thread::sleep(Duration::from_millis(25));
        send_locked(&mut inner, payload.clone(), true); // lift
        assert!(inner.stream.is_none(), "lifting the partition must force a reconnect");
        assert!(inner.partition_until.is_none());
        assert_eq!(inner.ring.len(), 2, "both frames must await the resume replay");
        assert!(!inner.dead, "a partition is recoverable, not terminal");
    }
}
