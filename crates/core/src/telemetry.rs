//! Live telemetry: a metrics registry, a JSONL run journal, and
//! Prometheus-style exposition.
//!
//! Everything the paper reports (Tables 1–3, Figure 1: idle ratio,
//! transferred/collected nodes, max simultaneously active solvers,
//! racing winner, gap) is a *post-mortem* statistic — [`crate::UgStats`]
//! reproduces exactly that, but nothing could be observed while a run
//! was alive. This module is the in-flight counterpart, three pieces:
//!
//! * a **metrics registry** ([`MetricsRegistry`]): atomic counters,
//!   gauges and fixed-bucket histograms (std::sync only, no deps) that
//!   cost one relaxed atomic op per update, rendered as Prometheus text
//!   exposition on demand. A process-wide [`global()`] registry carries
//!   cross-cutting series (wire bytes/frames); subsystems that may be
//!   instantiated several times per process (a [`crate::Server`]) own a
//!   private registry and render both.
//! * a **run journal** ([`Journal`]): timestamped [`TelemetryEvent`]s
//!   appended as JSON lines — phase changes, racing winner, incumbents,
//!   checkpoints, load-balance transfers, worker lifecycle, periodic
//!   [`ProgressMsg`] snapshots, and a final [`crate::UgStats`]. A
//!   journal is replayable ([`Journal::replay`]) for post-hoc analysis
//!   (gap-over-time plots, Figure 1-style) and is asserted on in tests
//!   ([`reconstruct_stats`] rebuilds the final statistics from the
//!   event stream alone).
//! * **exposition glue** ([`TelemetrySink`], [`ProgressSink`]): how a
//!   [`crate::supervisor::LoadCoordinator`] publishes without knowing
//!   who listens. The sink is cheap to clone, defaults to disabled, and
//!   a disabled sink costs one branch per call site.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Primitives: counter, gauge, histogram
// ---------------------------------------------------------------------

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point value that can go up and down (stored as f64 bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: `bounds` are the inclusive upper bounds
/// (`le`) of the finite buckets; an implicit `+Inf` bucket catches the
/// rest. Observation is two relaxed atomic ops plus a CAS loop for the
/// float sum — cheap enough for per-frame call sites.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per finite bound plus the `+Inf` slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Bounds are sanitized: sorted, deduplicated, non-finite dropped
    /// (the `+Inf` bucket always exists implicitly).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, buckets, count: AtomicU64::new(0), sum_bits: AtomicU64::new(0) }
    }

    /// Default bounds for sub-second latencies (seconds).
    pub fn latency_seconds() -> Self {
        Self::new(&[0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0])
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured inclusive upper bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// `(le, cumulative count)` pairs ending with the `+Inf` bucket.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let le = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((le, acc));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Registry and exposition
// ---------------------------------------------------------------------

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    /// Keyed by the rendered label set (`""` for unlabeled).
    series: BTreeMap<String, Metric>,
}

/// A named collection of metrics rendering to Prometheus text format.
/// Registration is get-or-create: asking twice for the same
/// (name, labels) returns the same underlying atomic, so independent
/// layers can share a series without plumbing.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = render_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// The unlabeled counter `name`, registering it on first use.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// The counter `name{labels}`, registering it on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// The unlabeled gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// The gauge `name{labels}`, registering it on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// The histogram `name{labels}`, registering it on first use.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        bounds: &[f64],
    ) -> Arc<Histogram> {
        match self
            .register(name, labels, help, || Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Drops one labeled series (e.g. a finished job's gauges).
    pub fn remove(&self, name: &str, labels: &[(&str, &str)]) {
        let key = render_labels(labels);
        let mut families = self.families.lock().unwrap();
        if let Some(f) = families.get_mut(name) {
            f.series.remove(&key);
        }
    }

    /// Renders every family in Prometheus text exposition format,
    /// deterministically ordered by (family, label set).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// [`MetricsRegistry::render`], appending into `out`.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let families = self.families.lock().unwrap();
        for (name, family) in families.iter() {
            let Some(kind) = family.series.values().next().map(|m| m.kind()) else { continue };
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_value(c.get() as f64));
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_value(g.get()));
                    }
                    Metric::Histogram(h) => {
                        for (le, cum) in h.cumulative() {
                            let le = fmt_value(le);
                            let inner = labels.trim_start_matches('{').trim_end_matches('}');
                            let all = if inner.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{{{inner},le=\"{le}\"}}")
                            };
                            let _ = writeln!(out, "{name}_bucket{all} {cum}");
                        }
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_value(h.sum()));
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                    }
                }
            }
        }
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", inner.join(","))
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus sample-value formatting: `+Inf`/`-Inf`/`NaN` spellings
/// for the non-finite cases.
pub fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Sums every sample of a metric family in a Prometheus-style
/// exposition: all lines whose metric name (up to `{` or whitespace)
/// equals `family`, ignoring comments. Unlabeled gauges yield their
/// single value; labeled counters yield the total across label sets.
/// The consumer-side inverse of [`MetricsRegistry::render`] — how the
/// gateway's steal/health loops and `ugd top` read a peer's exposition
/// without a full parser.
pub fn sample_sum(text: &str, family: &str) -> f64 {
    let mut sum = 0.0;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        if &line[..name_end] != family {
            continue;
        }
        if let Some(value) = line.rsplit(' ').next() {
            if let Ok(v) = value.parse::<f64>() {
                sum += v;
            }
        }
    }
    sum
}

/// Validates text against the subset of the Prometheus exposition
/// grammar this module emits (comment lines, `# HELP`/`# TYPE`, and
/// `name{labels} value` samples). Returns the first offending line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn valid_value(s: &str) -> bool {
        matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
    }
    fn valid_labels(s: &str) -> bool {
        // `{}`-wrapped, comma-separated `key="escaped value"` pairs.
        let Some(inner) = s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
            return false;
        };
        let mut rest = inner;
        loop {
            let Some(eq) = rest.find('=') else { return false };
            if !valid_name(&rest[..eq]) {
                return false;
            }
            let mut chars = rest[eq + 1..].char_indices();
            if chars.next().map(|(_, c)| c) != Some('"') {
                return false;
            }
            let mut end = None;
            let mut escaped = false;
            for (i, c) in chars {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(eq + 1 + i);
                    break;
                }
            }
            let Some(end) = end else { return false };
            rest = &rest[end + 1..];
            match rest.strip_prefix(',') {
                Some(r) => rest = r,
                None => return rest.is_empty(),
            }
        }
    }
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# ") {
            let mut parts = meta.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let ok = match keyword {
                "HELP" => valid_name(name),
                "TYPE" => {
                    valid_name(name)
                        && matches!(
                            parts.next().unwrap_or(""),
                            "counter" | "gauge" | "histogram" | "summary" | "untyped"
                        )
                }
                _ => true, // plain comment
            };
            if !ok {
                return Err(format!("line {}: bad metadata line {line:?}", no + 1));
            }
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no sample value in {line:?}", no + 1));
        };
        let (name, labels) = match series.find('{') {
            Some(i) => (&series[..i], &series[i..]),
            None => (series, ""),
        };
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name in {line:?}", no + 1));
        }
        if !labels.is_empty() && !valid_labels(labels) {
            return Err(format!("line {}: bad label set in {line:?}", no + 1));
        }
        if !valid_value(value) {
            return Err(format!("line {}: bad sample value in {line:?}", no + 1));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Process-wide series
// ---------------------------------------------------------------------

/// The process-wide registry: cross-cutting series that have no owning
/// subsystem instance (the wire codec runs in every transport).
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Wire-codec traffic counters, maintained by [`crate::wire`] itself so
/// every transport (per-call process comm, server pool, client
/// connections) is covered without plumbing.
pub struct WireStats {
    /// Frames encoded by this process.
    pub tx_frames: Arc<Counter>,
    /// Bytes (including length prefixes) encoded by this process.
    pub tx_bytes: Arc<Counter>,
    /// Frames decoded by this process.
    pub rx_frames: Arc<Counter>,
    /// Bytes (including length prefixes) decoded by this process.
    pub rx_bytes: Arc<Counter>,
}

/// The process-wide wire counters, registered in [`global`] on first use.
pub fn wire() -> &'static WireStats {
    static WIRE: OnceLock<WireStats> = OnceLock::new();
    WIRE.get_or_init(|| {
        let r = global();
        WireStats {
            tx_frames: r
                .counter("ugrs_wire_tx_frames_total", "Wire frames encoded by this process"),
            tx_bytes: r.counter(
                "ugrs_wire_tx_bytes_total",
                "Wire bytes (frames incl. length prefix) encoded by this process",
            ),
            rx_frames: r
                .counter("ugrs_wire_rx_frames_total", "Wire frames decoded by this process"),
            rx_bytes: r.counter(
                "ugrs_wire_rx_bytes_total",
                "Wire bytes (frames incl. length prefix) decoded by this process",
            ),
        }
    })
}

/// Transport self-healing counters, maintained by [`crate::process`]:
/// how often worker connections were resumed instead of declared dead,
/// and what the recovery cost.
pub struct CommStats {
    /// Successful session resumptions (a worker reconnected and its
    /// rank was restored instead of going through `WorkerDied`).
    pub reconnects: Arc<Counter>,
    /// Frames replayed from a retransmit ring after a resume.
    pub frames_retransmitted: Arc<Counter>,
    /// Frames rejected by the CRC check (corruption caught in flight).
    pub frames_corrupt: Arc<Counter>,
    /// Duplicate frames suppressed by sequence number after a replay.
    pub dup_frames: Arc<Counter>,
    /// Sequence gaps detected by a receiver — frames missing from the
    /// byte stream. Each forces a reconnect so the resume replays the
    /// missing range instead of silently running past it.
    pub seq_gaps: Arc<Counter>,
    /// Retransmit rings that hit capacity. The session is declared
    /// dead loudly (requeue path) rather than silently evicting — and
    /// losing — the oldest un-acked payload.
    pub ring_overflows: Arc<Counter>,
}

/// The process-wide transport recovery counters, registered in
/// [`global`] on first use.
pub fn comm() -> &'static CommStats {
    static COMM: OnceLock<CommStats> = OnceLock::new();
    COMM.get_or_init(|| {
        let r = global();
        CommStats {
            reconnects: r.counter(
                "ugrs_comm_reconnects_total",
                "Worker connections resumed via session reconnect",
            ),
            frames_retransmitted: r.counter(
                "ugrs_comm_frames_retransmitted_total",
                "Frames replayed from a retransmit ring after a reconnect",
            ),
            frames_corrupt: r
                .counter("ugrs_comm_frames_corrupt_total", "Frames rejected by the CRC32 check"),
            dup_frames: r.counter(
                "ugrs_comm_dup_frames_total",
                "Duplicate frames suppressed by sequence number",
            ),
            seq_gaps: r.counter(
                "ugrs_comm_seq_gaps_total",
                "Sequence gaps detected by a receiver (each forces a reconnect)",
            ),
            ring_overflows: r.counter(
                "ugrs_comm_ring_overflows_total",
                "Retransmit rings that overflowed (the session is declared dead)",
            ),
        }
    })
}

// ---------------------------------------------------------------------
// Progress snapshots
// ---------------------------------------------------------------------

/// A point-in-time snapshot of one coordinator's run — the live
/// counterpart of [`crate::UgStats`], emitted periodically through a
/// [`ProgressSink`] and into the journal. Everything a `ugd top` row
/// needs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ProgressMsg {
    /// Seconds since the run started.
    pub wall: f64,
    /// `"racing"` or `"normal"`.
    pub phase: String,
    /// Best incumbent objective (internal sense; +inf when none).
    pub primal_bound: f64,
    /// Global dual bound (internal sense).
    pub dual_bound: f64,
    /// Relative gap in percent (Table 2 convention; +inf when open).
    pub gap_percent: f64,
    /// Coordinator queue + assigned subtree roots.
    pub open_nodes: u64,
    /// Completed B&B nodes plus the freshest in-flight status counts.
    pub nodes: u64,
    /// Subproblems sent coordinator → solver so far.
    pub transferred: u64,
    /// Subproblems collected solver → coordinator so far.
    pub collected: u64,
    /// Improving incumbents that reached the coordinator so far.
    pub incumbents: u64,
    /// Solvers currently holding a subproblem.
    pub active: usize,
    /// Aggregate idle ratio over all ranks so far, in percent.
    pub idle_percent: f64,
    /// Ranks declared dead by the transport so far.
    pub workers_died: u64,
}

/// Where a coordinator pushes [`ProgressMsg`]s: an opaque callback so
/// the supervisor needs no knowledge of the server's aggregation
/// structures (or of whatever a library embedder wires up).
#[derive(Clone)]
pub struct ProgressSink(Arc<dyn Fn(&ProgressMsg) + Send + Sync>);

impl ProgressSink {
    /// Wraps a callback as a sink.
    pub fn new(f: impl Fn(&ProgressMsg) + Send + Sync + 'static) -> Self {
        ProgressSink(Arc::new(f))
    }

    /// Pushes one snapshot through the callback.
    pub fn emit(&self, msg: &ProgressMsg) {
        (self.0)(msg)
    }
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProgressSink")
    }
}

// ---------------------------------------------------------------------
// The run journal
// ---------------------------------------------------------------------

/// One journaled occurrence. Progress snapshots carry the full
/// [`ProgressMsg`]; everything else is a discrete lifecycle event.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum TelemetryEvent {
    /// The coordinator's run loop began.
    RunStarted {
        /// Solver ranks in this run.
        workers: usize,
        /// Position in the restart chain (run `1.run_index`).
        run_index: u32,
        /// True when the run resumed from a checkpoint.
        restarted: bool,
    },
    /// Ramp-up phase change: `"racing"` or `"normal"`.
    Phase {
        /// The phase entered: `"racing"` or `"normal"`.
        phase: String,
    },
    /// Racing concluded: the winning rank and its settings index
    /// (Figure 1's statistic).
    RacingWinner {
        /// The rank whose racing run won.
        winner_rank: usize,
        /// Index of the winning settings bundle.
        settings_index: usize,
    },
    /// An improving incumbent reached the coordinator.
    Incumbent {
        /// Objective of the improving solution (internal sense).
        obj: f64,
    },
    /// Periodic progress snapshot (gap-over-time comes from these).
    Progress(ProgressMsg),
    /// A subproblem left the coordinator for `rank` (load balancing).
    Transferred {
        /// Receiving solver rank.
        rank: usize,
        /// Dual bound of the transferred subproblem.
        dual_bound: f64,
    },
    /// A collected subproblem arrived from `rank`.
    Collected {
        /// Exporting solver rank.
        rank: usize,
        /// Dual bound of the collected subproblem.
        dual_bound: f64,
    },
    /// A checkpoint hit disk.
    CheckpointSaved {
        /// Primitive (coordinator-held) nodes the checkpoint preserves.
        primitive_nodes: usize,
    },
    /// The transport declared `rank` dead; its work was requeued.
    WorkerDied {
        /// The dead rank.
        rank: usize,
    },
    /// The run ended; the final statistics.
    RunFinished {
        /// Final cumulative statistics of the run.
        stats: crate::UgStats,
    },
    /// Job provenance, written once at the head of a per-job journal:
    /// which instance family ran and — when the job was submitted from
    /// a file (`ugd submit --file`) — the FNV-1a 64 checksum of the
    /// exact bytes solved.
    JobMeta {
        /// Instance family label (`stp`, `misdp`, `maxcut`, …).
        family: Option<String>,
        /// Hex FNV-1a 64 of the source instance file, if known.
        checksum: Option<String>,
    },
}

/// One journal line: seconds since run start plus the event.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JournalRecord {
    /// Seconds since the run started.
    pub t: f64,
    /// The journaled event.
    pub event: TelemetryEvent,
}

/// An append-only JSONL event log for one run/job. The solve path only
/// serializes and enqueues; one process-wide writer thread owns every
/// journal file, drains bursts in one write, and flushes whenever its
/// queue runs empty — so a tailing reader sees a near-current journal,
/// yet no coordinator loop ever blocks on filesystem latency, and a
/// short job pays a channel round-trip on close rather than a thread
/// spawn + join (measured: each was the difference between ~0% and
/// several % job overhead on a serve-mode batch of millisecond jobs).
pub struct Journal {
    path: PathBuf,
    start: Instant,
    id: u64,
    tx: std::sync::mpsc::Sender<JournalOp>,
}

enum JournalOp {
    /// Create (truncate) the file for journal `id`; parent dirs made as
    /// needed. An open failure is reported to stderr once and the
    /// journal degrades to a sink — telemetry must never kill a run.
    Open {
        id: u64,
        path: PathBuf,
    },
    Line {
        id: u64,
        line: Vec<u8>,
    },
    /// Flush every open journal, then ack.
    Flush {
        ack: std::sync::mpsc::Sender<()>,
    },
    /// Flush + close journal `id`, then ack — after the ack the file is
    /// complete on disk.
    Close {
        id: u64,
        ack: std::sync::mpsc::Sender<()>,
    },
}

/// The process-wide journal writer: spawned once, owns all journal
/// files, keyed by the creating [`Journal`]'s id. Ops for one journal
/// arrive in order because each `Journal` sends on the same channel.
fn journal_service(rx: std::sync::mpsc::Receiver<JournalOp>) {
    use std::collections::HashMap;
    let mut files: HashMap<u64, std::io::BufWriter<std::fs::File>> = HashMap::new();
    // Block for the next op, drain whatever else queued up behind it,
    // then flush once per drained batch. I/O errors are swallowed.
    while let Ok(op) = rx.recv() {
        let mut acks = Vec::new();
        let mut next = Some(op);
        while let Some(op) = next {
            match op {
                JournalOp::Open { id, path } => {
                    let opened = (|| {
                        if let Some(dir) = path.parent() {
                            if !dir.as_os_str().is_empty() {
                                std::fs::create_dir_all(dir)?;
                            }
                        }
                        std::fs::File::create(&path)
                    })();
                    match opened {
                        Ok(f) => {
                            files.insert(id, std::io::BufWriter::new(f));
                        }
                        Err(e) => {
                            eprintln!("ugrs: cannot create run journal {}: {e}", path.display());
                        }
                    }
                }
                JournalOp::Line { id, line } => {
                    if let Some(out) = files.get_mut(&id) {
                        let _ = out.write_all(&line);
                    }
                }
                JournalOp::Flush { ack } => acks.push(ack),
                JournalOp::Close { id, ack } => {
                    if let Some(mut out) = files.remove(&id) {
                        let _ = out.flush();
                    }
                    acks.push(ack);
                }
            }
            next = rx.try_recv().ok();
        }
        for out in files.values_mut() {
            let _ = out.flush();
        }
        for ack in acks {
            let _ = ack.send(());
        }
    }
}

/// Lazily spawns the writer and hands out its channel.
fn journal_service_tx() -> &'static std::sync::mpsc::Sender<JournalOp> {
    static TX: std::sync::OnceLock<std::sync::mpsc::Sender<JournalOp>> = std::sync::OnceLock::new();
    TX.get_or_init(|| {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::Builder::new()
            .name("ugrs-journal".into())
            .spawn(move || journal_service(rx))
            .expect("spawn journal writer thread");
        tx
    })
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Journal({})", self.path.display())
    }
}

impl Journal {
    /// Creates (truncating) the journal file, making parent directories
    /// as needed. The open itself happens on the shared writer thread
    /// so the caller pays no filesystem latency; an unwritable path is
    /// reported to stderr by the writer, not returned here. `Err` is
    /// reserved for future setup failures — today this always succeeds.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = path.into();
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let tx = journal_service_tx().clone();
        let _ = tx.send(JournalOp::Open { id, path: path.clone() });
        Ok(Journal { path, start: Instant::now(), id, tx })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event, stamped with seconds since journal creation.
    /// Serialization happens here; the write is handed to the shared
    /// writer thread. I/O errors are swallowed: telemetry must never
    /// kill a run.
    pub fn log(&self, event: TelemetryEvent) {
        let record = JournalRecord { t: self.start.elapsed().as_secs_f64(), event };
        let Ok(mut line) = serde_json::to_vec(&record) else { return };
        line.push(b'\n');
        let _ = self.tx.send(JournalOp::Line { id: self.id, line });
    }

    /// Blocks until everything logged so far is written and flushed —
    /// for readers that replay a journal they also write (tests). The
    /// writer also flushes whenever its queue drains and on close.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        if self.tx.send(JournalOp::Flush { ack: ack_tx }).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Reads a journal back; malformed trailing lines (a crash mid-
    /// write) are ignored rather than failing the whole replay.
    pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<JournalRecord>> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut out = Vec::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalRecord>(&line) {
                Ok(r) => out.push(r),
                Err(_) => break,
            }
        }
        Ok(out)
    }
}

impl Drop for Journal {
    /// Sends a close and waits for the writer's ack — a dropped journal
    /// is always complete on disk. A channel round-trip, not a thread
    /// join: the writer is shared and outlives every journal.
    fn drop(&mut self) {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        if self.tx.send(JournalOp::Close { id: self.id, ack: ack_tx }).is_ok() {
            let _ = ack_rx.recv();
        }
    }
}

/// Rebuilds final run statistics from the event stream alone — the
/// journal-replay check: everything [`crate::UgStats`] reports must be
/// derivable from what was journaled while the run was alive. Discrete
/// events drive the counters; the last [`TelemetryEvent::Progress`]
/// supplies bounds, node counts and idle ratio; `max_active` is the
/// maximum `active` any snapshot saw.
pub fn reconstruct_stats(records: &[JournalRecord]) -> crate::UgStats {
    let mut stats = crate::UgStats::default();
    for r in records {
        match &r.event {
            TelemetryEvent::Incumbent { .. } => stats.incumbents_seen += 1,
            TelemetryEvent::Transferred { .. } => stats.transferred += 1,
            TelemetryEvent::Collected { .. } => stats.collected += 1,
            TelemetryEvent::WorkerDied { .. } => stats.workers_died += 1,
            TelemetryEvent::RacingWinner { settings_index, .. } => {
                stats.racing_winner = Some(*settings_index)
            }
            TelemetryEvent::Progress(p) => {
                stats.wall_time = p.wall;
                stats.primal_bound = p.primal_bound;
                stats.dual_bound = p.dual_bound;
                stats.open_nodes = p.open_nodes;
                stats.nodes_total = p.nodes;
                stats.idle_percent = p.idle_percent;
                if p.active > stats.max_active {
                    stats.max_active = p.active;
                    stats.first_max_active_time = p.wall;
                }
            }
            _ => {}
        }
    }
    stats
}

// ---------------------------------------------------------------------
// The sink handed to a coordinator
// ---------------------------------------------------------------------

/// Telemetry wiring of one run: both halves optional, both cheap when
/// absent. Cloning shares the underlying journal/sink.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySink {
    /// Event journal, when this run writes one.
    pub journal: Option<Arc<Journal>>,
    /// Live progress callback, when someone is watching.
    pub progress: Option<ProgressSink>,
}

impl TelemetrySink {
    /// A sink that only journals.
    pub fn with_journal(journal: Arc<Journal>) -> Self {
        TelemetrySink { journal: Some(journal), progress: None }
    }

    /// True when any half is wired (callers may skip building events
    /// otherwise).
    pub fn enabled(&self) -> bool {
        self.journal.is_some() || self.progress.is_some()
    }

    /// Journals one event (no-op without a journal).
    pub fn log(&self, event: TelemetryEvent) {
        if let Some(j) = &self.journal {
            j.log(event);
        }
    }

    /// Journals the snapshot and pushes it to the progress sink.
    pub fn progress(&self, msg: &ProgressMsg) {
        if let Some(p) = &self.progress {
            p.emit(msg);
        }
        if let Some(j) = &self.journal {
            j.log(TelemetryEvent::Progress(msg.clone()));
        }
    }
}

/// Builds a filesystem-safe journal file name fragment from a free-form
/// job name.
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .take(48)
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    out
}

// Silence "unused" for DeserializeOwned, used only in bounds elsewhere.
#[allow(dead_code)]
fn _assert_wire_types<T: Serialize + DeserializeOwned>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("ugrs_test_events_total", "events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Get-or-create returns the same series.
        let c2 = r.counter("ugrs_test_events_total", "events");
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge_with("ugrs_test_depth", &[("q", "a b")], "depth");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let text = r.render();
        assert!(text.contains("# TYPE ugrs_test_events_total counter"));
        assert!(text.contains("ugrs_test_events_total 6"));
        assert!(text.contains("ugrs_test_depth{q=\"a b\"} 2.5"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn histogram_exposition_shape() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("ugrs_test_latency_seconds", &[], "lat", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(3.0);
        let text = r.render();
        assert!(text.contains("ugrs_test_latency_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("ugrs_test_latency_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("ugrs_test_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ugrs_test_latency_seconds_count 3"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn exposition_grammar_accepts_non_finite_and_rejects_garbage() {
        validate_exposition("ugrs_gap_percent +Inf\nugrs_bound -Inf\nugrs_x NaN\n").unwrap();
        assert!(validate_exposition("1bad_name 3\n").is_err());
        assert!(validate_exposition("no_value\n").is_err());
        assert!(validate_exposition("m{unclosed=\"x} 1\n").is_err());
        assert!(validate_exposition("m 12parse\n").is_err());
        // Escaped quotes and label spaces are fine.
        validate_exposition("m{a=\"x \\\" y\",b=\"z\"} 1\n").unwrap();
    }

    #[test]
    fn labeled_histogram_merges_le_correctly() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("ugrs_hb_seconds", &[("worker", "3")], "hb", &[0.5]);
        h.observe(0.1);
        let text = r.render();
        assert!(text.contains("ugrs_hb_seconds_bucket{worker=\"3\",le=\"0.5\"} 1"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn journal_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ugrs-journal-{}", std::process::id()));
        let path = dir.join("run.jsonl");
        let j = Journal::create(&path).unwrap();
        j.log(TelemetryEvent::RunStarted { workers: 2, run_index: 1, restarted: false });
        j.log(TelemetryEvent::Incumbent { obj: 5.0 });
        j.log(TelemetryEvent::Progress(ProgressMsg {
            wall: 0.5,
            phase: "normal".into(),
            primal_bound: 5.0,
            dual_bound: f64::NEG_INFINITY,
            gap_percent: f64::INFINITY,
            open_nodes: 3,
            nodes: 10,
            transferred: 1,
            collected: 0,
            incumbents: 1,
            active: 2,
            idle_percent: 12.5,
            workers_died: 0,
        }));
        j.flush();
        let records = Journal::replay(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|w| w[0].t <= w[1].t));
        match &records[2].event {
            TelemetryEvent::Progress(p) => {
                assert_eq!(p.open_nodes, 3);
                assert!(p.dual_bound.is_infinite() && p.dual_bound < 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = reconstruct_stats(&records);
        assert_eq!(stats.incumbents_seen, 1);
        assert_eq!(stats.nodes_total, 10);
        assert_eq!(stats.max_active, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_ignores_torn_tail() {
        let dir = std::env::temp_dir().join(format!("ugrs-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let j = Journal::create(&path).unwrap();
        j.log(TelemetryEvent::Incumbent { obj: 1.0 });
        drop(j);
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"t\":0.5,\"event\":{\"Incumb").unwrap();
        drop(f);
        let records = Journal::replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitize_name_is_fs_safe() {
        assert_eq!(sanitize_name("a/b c.stp"), "a_b_c_stp");
        assert_eq!(sanitize_name(""), "_");
        assert!(sanitize_name(&"x".repeat(100)).len() <= 48);
    }

    /// Histogram invariants over arbitrary bucket boundaries and
    /// observations: cumulative counts are monotone, the +Inf bucket
    /// equals the total count, every observation lands in the first
    /// bucket whose bound is >= the value, and the sum matches. Kept
    /// out of the `proptest!` body (the macro expands per statement).
    fn check_histogram_invariants(
        mut bounds: Vec<f64>,
        obs: Vec<f64>,
    ) -> Result<(), proptest::TestCaseError> {
        let h = Histogram::new(&bounds);
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        prop_assert_eq!(h.bounds(), &bounds[..]);
        for &v in &obs {
            h.observe(v);
        }
        let cum = h.cumulative();
        prop_assert_eq!(cum.len(), bounds.len() + 1);
        for w in cum.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "cumulative counts must be monotone");
            prop_assert!(w[0].0 < w[1].0, "bounds must be strictly increasing");
        }
        prop_assert_eq!(cum.last().unwrap().1, obs.len() as u64);
        prop_assert_eq!(h.count(), obs.len() as u64);
        // Cross-check each cumulative bucket against a direct count.
        for &(le, got) in &cum {
            let expect = obs.iter().filter(|&&v| v <= le).count() as u64;
            prop_assert_eq!(got, expect, "bucket le={} disagrees", le);
        }
        let sum: f64 = obs.iter().sum();
        prop_assert!((h.sum() - sum).abs() <= 1e-9 * (1.0 + sum.abs()) * obs.len().max(1) as f64);
        Ok(())
    }

    proptest! {
        #[test]
        fn histogram_bucket_boundaries(
            bounds in proptest::collection::vec(-1e6f64..1e6, 0..8),
            obs in proptest::collection::vec(-1e6f64..1e6, 0..64),
        ) {
            check_histogram_invariants(bounds, obs)?;
        }
    }
}
