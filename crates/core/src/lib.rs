//! UG — the Ubiquity Generator framework, in Rust.
//!
//! This crate reproduces the architecture of UG as described in §2.2 of
//! the paper: a generic framework that parallelizes *any existing
//! state-of-the-art B&B-based solver* (the **base solver**) through a
//! Supervisor–Worker coordination mechanism with subtree-level
//! parallelism (Algorithms 1 and 2 of the paper):
//!
//! * the **LoadCoordinator** ([`supervisor`]) is the Supervisor: it owns
//!   a small pool of subproblems extracted from the solvers, performs
//!   dynamic load balancing via *collect mode* (requesting heavy open
//!   subproblems from busy solvers), distributes incumbents, triggers
//!   checkpoints and decides termination;
//! * each **ParaSolver** ([`worker`]) wraps one base-solver instance; the
//!   B&B tree lives *inside* the base solver, and only solver-independent
//!   subproblem descriptions cross rank boundaries;
//! * **ramp-up** is either *normal* (solvers spread branched nodes) or
//!   *racing* ([`RampUp::Racing`]): all solvers attack the root under
//!   different parameter settings / permutations, a winner is selected by
//!   a (dual bound, open nodes) criterion, its open nodes are collected
//!   and redistributed, and the losers' trees are discarded — keeping
//!   only their solutions;
//! * **layered presolving** happens because every ParaSolver re-presolves
//!   each received subproblem (the base solver does this internally);
//! * **checkpointing** ([`checkpoint`]) saves only *primitive nodes* —
//!   the LoadCoordinator's queue plus the subproblem roots currently
//!   assigned — exactly UG's strategy of saving subtree roots rather
//!   than all open nodes, accepting re-search after restart.
//!
//! The message-passing layer ([`comm`]) is rank-addressed and typed,
//! with two interchangeable back-ends — the in-process **ThreadComm**
//! (the Pthreads/C++11 half, FiberSCIP-style) and the multi-process
//! **ProcessComm** ([`process`]: wire frames over localhost TCP, the
//! MPI/ParaSCIP half) — proving UG's design point that *only this
//! layer* changes between shared and distributed memory: supervisor,
//! worker and runner are byte-identical across both.

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod comm;
pub mod gateway;
pub mod ledger;
pub mod messages;
pub mod process;
pub mod runner;
pub mod server;
pub mod settings;
pub mod stats;
pub mod supervisor;
pub mod telemetry;
pub mod wire;
pub mod worker;

pub use chaos::{ChaosConfig, ChaosProfile, FaultAction, FaultPlan};
pub use checkpoint::{write_atomic, Checkpoint};
pub use gateway::{Gateway, GatewayConfig, ShardSpec, TenantQuota};
pub use ledger::{JobLedger, LedgerRecord, RecoveredJob, Recovery};
pub use messages::{Message, SubproblemMsg};
pub use process::ProcessCommConfig;
pub use runner::{
    run_distributed_worker, solve_parallel, solve_parallel_distributed, DistributedOptions,
    ParallelOptions, ParallelResult, RampUp,
};
pub use server::{
    serve_worker, ClientRequest, JobClient, JobEvent, JobEventKind, JobSpec, JobState, JobSummary,
    PoolDown, PoolHello, PoolUp, PoolWelcome, Server, ServerConfig, ServerReply, ServerStatus,
    WireType, WorkerInfo, POOL_PROTOCOL_VERSION,
};
pub use server::{FleetStatus, JobProgress, MetricsReport, ShardSummary, SubmitOutcome};
pub use settings::SolverSettings;
pub use stats::UgStats;
pub use telemetry::{
    Journal, JournalRecord, MetricsRegistry, ProgressMsg, ProgressSink, TelemetryEvent,
    TelemetrySink,
};
pub use worker::{BaseSolver, ParaControl, SubproblemOutcome};

/// The internal objective sense across the whole framework is
/// *minimization*; base solvers must convert at their boundary.
pub const OBJ_EPS: f64 = 1e-9;
