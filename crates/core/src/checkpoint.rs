//! Checkpointing and restarting.
//!
//! UG "saves only primitive nodes, which are nodes that have no ancestor
//! nodes in the LoadCoordinator" (§2.2): the coordinator's queue plus
//! the subproblem roots currently assigned to solvers. This keeps I/O
//! small at scale but re-searches the assigned subtrees after restart —
//! the effect visible in Table 2, where run 1.1 ends with 271,781 open
//! nodes but run 1.2 restarts from just 18 primitive ones.

use crate::messages::SubproblemMsg;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::Path;

/// A serialized snapshot of the coordinator's primitive state.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint<Sub, Sol> {
    /// Queued subproblems.
    pub queue: Vec<SubproblemMsg<Sub>>,
    /// Subproblem roots that were assigned to solvers at save time
    /// (their subtrees will be re-searched).
    pub assigned: Vec<SubproblemMsg<Sub>>,
    /// Best solution so far.
    pub incumbent: Option<(Sol, f64)>,
    /// Global dual bound at save time (internal sense).
    pub dual_bound: f64,
    /// Total B&B nodes processed across the whole restart chain.
    pub nodes_so_far: u64,
    /// Subproblems transferred coordinator → solvers across the chain.
    pub transferred_so_far: u64,
    /// Wall-clock seconds accumulated across the chain.
    pub wall_time_so_far: f64,
    /// How many runs produced this chain (1-based; run `1.k` in Table 2).
    pub run_index: u32,
}

/// Writes `data` to `path` with the crash-safe discipline every durable
/// artifact of this crate uses (checkpoints and the job ledger):
///
/// 1. write to a sibling `.tmp` file,
/// 2. fsync the temp file — without it, a crash shortly after the
///    rename could leave the *new* name pointing at not-yet-flushed
///    data, i.e. a truncated or empty file, which is worse than the
///    stale-but-complete one the rename replaced,
/// 3. atomically rename over `path`,
/// 4. fsync the parent directory (best-effort) so the rename itself is
///    on disk too.
///
/// A reader therefore sees either the old complete contents or the new
/// complete contents, never a torn mix.
pub fn write_atomic(path: &Path, data: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(data)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort fsync of `path`'s parent directory, making a rename or
/// unlink in it durable. Failures are ignored: directory fsync is not
/// supported on every filesystem, and the data-file fsync already
/// happened.
pub fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
}

impl<Sub, Sol> Checkpoint<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// Number of primitive nodes the checkpoint holds.
    pub fn num_primitive_nodes(&self) -> usize {
        self.queue.len() + self.assigned.len()
    }

    /// Saves as JSON (human-inspectable restart artifacts), via
    /// [`write_atomic`] — a crash during or shortly after the save
    /// leaves either the previous complete checkpoint or the new one.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let data = serde_json::to_vec(self)?;
        write_atomic(path, &data)
    }

    /// Loads from JSON. Corrupt or torn contents surface as
    /// [`std::io::ErrorKind::InvalidData`] rather than a panic, so a
    /// recovery pass can skip a bad artifact and continue.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        serde_json::from_slice(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A per-test unique scratch directory: fixed names in
    /// `temp_dir()` collide when the test binary runs its tests in
    /// parallel threads (or when two checkouts run tests at once), so
    /// key by pid plus a process-wide counter.
    fn scratch_dir(label: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ugrs-cp-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Checkpoint<Vec<u32>, Vec<f64>> {
        Checkpoint {
            queue: vec![SubproblemMsg { sub: vec![1, 2], dual_bound: 3.0 }],
            assigned: vec![SubproblemMsg { sub: vec![7], dual_bound: 1.5 }],
            incumbent: Some((vec![0.5, 1.0], 42.0)),
            dual_bound: 1.5,
            nodes_so_far: 1000,
            transferred_so_far: 17,
            wall_time_so_far: 3.25,
            run_index: 2,
        }
    }

    #[test]
    fn round_trip_through_disk() {
        let cp = sample();
        assert_eq!(cp.num_primitive_nodes(), 2);
        let dir = scratch_dir("roundtrip");
        let path = dir.join("cp.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::<Vec<u32>, Vec<f64>>::load(&path).unwrap();
        assert_eq!(back.queue.len(), 1);
        assert_eq!(back.assigned[0].sub, vec![7]);
        assert_eq!(back.incumbent.as_ref().unwrap().1, 42.0);
        assert_eq!(back.run_index, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let dir = scratch_dir("missing");
        assert!(Checkpoint::<u32, u32>::load(&dir.join("absent.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_corrupt_json_is_invalid_data_not_a_panic() {
        let dir = scratch_dir("corrupt");
        let path = dir.join("cp.json");
        std::fs::write(&path, b"this is not json at all").unwrap();
        let err = Checkpoint::<u32, u32>::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_torn_prefix_of_a_valid_checkpoint_errors() {
        // Simulate a torn write (a crash without write_atomic's
        // discipline, or a filesystem that lost the tail): a valid
        // checkpoint truncated mid-record must load as InvalidData.
        let dir = scratch_dir("torn");
        let path = dir.join("cp.json");
        sample().save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [1, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = Checkpoint::<Vec<u32>, Vec<f64>>::load(&path).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp_file() {
        let dir = scratch_dir("atomic");
        let path = dir.join("cp.json");
        sample().save(&path).unwrap();
        let mut second = sample();
        second.run_index = 3;
        second.save(&path).unwrap();
        assert_eq!(Checkpoint::<Vec<u32>, Vec<f64>>::load(&path).unwrap().run_index, 3);
        assert!(!path.with_extension("tmp").exists(), "temp file must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }
}
