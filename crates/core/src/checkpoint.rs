//! Checkpointing and restarting.
//!
//! UG "saves only primitive nodes, which are nodes that have no ancestor
//! nodes in the LoadCoordinator" (§2.2): the coordinator's queue plus
//! the subproblem roots currently assigned to solvers. This keeps I/O
//! small at scale but re-searches the assigned subtrees after restart —
//! the effect visible in Table 2, where run 1.1 ends with 271,781 open
//! nodes but run 1.2 restarts from just 18 primitive ones.

use crate::messages::SubproblemMsg;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::Path;

/// A serialized snapshot of the coordinator's primitive state.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint<Sub, Sol> {
    /// Queued subproblems.
    pub queue: Vec<SubproblemMsg<Sub>>,
    /// Subproblem roots that were assigned to solvers at save time
    /// (their subtrees will be re-searched).
    pub assigned: Vec<SubproblemMsg<Sub>>,
    /// Best solution so far.
    pub incumbent: Option<(Sol, f64)>,
    /// Global dual bound at save time (internal sense).
    pub dual_bound: f64,
    /// Cumulative statistics carried across restarts.
    pub nodes_so_far: u64,
    pub transferred_so_far: u64,
    pub wall_time_so_far: f64,
    /// How many runs produced this chain (1-based; run `1.k` in Table 2).
    pub run_index: u32,
}

impl<Sub, Sol> Checkpoint<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// Number of primitive nodes the checkpoint holds.
    pub fn num_primitive_nodes(&self) -> usize {
        self.queue.len() + self.assigned.len()
    }

    /// Saves as JSON (human-inspectable restart artifacts).
    ///
    /// Durability: the temp file is fsynced before the atomic rename —
    /// without it, a crash shortly after `rename` could leave the *new*
    /// name pointing at not-yet-flushed data, i.e. a truncated or empty
    /// checkpoint, which is worse than the stale-but-complete one the
    /// rename replaced. The parent directory is fsynced afterwards
    /// (best-effort) so the rename itself is on disk too.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let tmp = path.with_extension("tmp");
        let data = serde_json::to_vec(self)?;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&data)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }

    /// Loads from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        serde_json::from_slice(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_disk() {
        let cp = Checkpoint::<Vec<u32>, Vec<f64>> {
            queue: vec![SubproblemMsg { sub: vec![1, 2], dual_bound: 3.0 }],
            assigned: vec![SubproblemMsg { sub: vec![7], dual_bound: 1.5 }],
            incumbent: Some((vec![0.5, 1.0], 42.0)),
            dual_bound: 1.5,
            nodes_so_far: 1000,
            transferred_so_far: 17,
            wall_time_so_far: 3.25,
            run_index: 2,
        };
        assert_eq!(cp.num_primitive_nodes(), 2);
        let dir = std::env::temp_dir().join("ugrs-cp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::<Vec<u32>, Vec<f64>>::load(&path).unwrap();
        assert_eq!(back.queue.len(), 1);
        assert_eq!(back.assigned[0].sub, vec![7]);
        assert_eq!(back.incumbent.as_ref().unwrap().1, 42.0);
        assert_eq!(back.run_index, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let p = std::env::temp_dir().join("ugrs-cp-missing.json");
        assert!(Checkpoint::<u32, u32>::load(&p).is_err());
    }
}
