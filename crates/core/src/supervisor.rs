//! The LoadCoordinator: Algorithm 1 of the paper, plus racing ramp-up,
//! collect-mode load balancing and checkpointing.

use crate::checkpoint::Checkpoint;
use crate::comm::LcComm;
use crate::messages::{Message, SubproblemMsg};
use crate::runner::{ParallelOptions, ParallelResult, RampUp};
use crate::stats::UgStats;
use crate::telemetry::{ProgressMsg, TelemetryEvent};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[derive(Debug, PartialEq)]
enum Phase {
    Racing,
    Normal,
}

/// The Supervisor of the Supervisor–Worker scheme. Owns only a small
/// pool of subproblems; the B&B trees live inside the base solvers.
pub struct LoadCoordinator<Sub, Sol> {
    comm: LcComm<Sub, Sol>,
    opts: ParallelOptions,
    root: Sub,
    queue: Vec<SubproblemMsg<Sub>>,
    idle: Vec<usize>,
    assigned: HashMap<usize, SubproblemMsg<Sub>>,
    statuses: HashMap<usize, (f64, usize, u64)>,
    incumbent: Option<(Sol, f64)>,
    collect_mode: bool,
    phase: Phase,
    racing_settings_of_rank: HashMap<usize, usize>,
    racing_winner: Option<usize>,
    start: Instant,
    idle_since: Vec<Option<Instant>>,
    idle_total: Vec<f64>,
    stats: UgStats,
    run_index: u32,
    carried_nodes: u64,
    carried_transferred: u64,
    carried_wall: f64,
    last_checkpoint: Instant,
    last_progress: Instant,
    /// Ranks already sent an AbortSubproblem for their current assignment
    /// (avoids flooding the channel from the management loop).
    abort_sent: std::collections::HashSet<usize>,
    /// Ranks the transport reported dead (distributed runs): never
    /// assigned again; their in-flight work was requeued.
    dead: std::collections::HashSet<usize>,
}

impl<Sub, Sol> LoadCoordinator<Sub, Sol>
where
    Sub: Clone + Send + Serialize + DeserializeOwned + 'static,
    Sol: Clone + Send + Serialize + DeserializeOwned + 'static,
{
    /// Builds a coordinator over `comm` that will solve `root`.
    pub fn new(comm: LcComm<Sub, Sol>, opts: ParallelOptions, root: Sub) -> Self {
        let n = comm.num_workers();
        let now = Instant::now();
        LoadCoordinator {
            comm,
            opts,
            root,
            queue: Vec::new(),
            idle: (0..n).collect(),
            assigned: HashMap::new(),
            statuses: HashMap::new(),
            incumbent: None,
            collect_mode: false,
            phase: Phase::Normal,
            racing_settings_of_rank: HashMap::new(),
            racing_winner: None,
            start: now,
            idle_since: vec![Some(now); n],
            idle_total: vec![0.0; n],
            stats: UgStats::default(),
            run_index: 1,
            carried_nodes: 0,
            carried_transferred: 0,
            carried_wall: 0.0,
            last_checkpoint: now,
            last_progress: now,
            abort_sent: std::collections::HashSet::new(),
            dead: std::collections::HashSet::new(),
        }
    }

    /// Seeds the coordinator with a known solution before the run (the
    /// Table 3 workflow: "rerun from scratch with the best solution").
    pub fn set_initial_incumbent(&mut self, sol: Sol, obj: f64) {
        self.incumbent = Some((sol, obj));
    }

    fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn cutoff(&self) -> f64 {
        self.incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| o - 1e-9)
    }

    fn mark_busy(&mut self, rank: usize) {
        if let Some(since) = self.idle_since[rank].take() {
            self.idle_total[rank] += since.elapsed().as_secs_f64();
        }
    }

    fn mark_idle(&mut self, rank: usize) {
        if self.idle_since[rank].is_none() {
            self.idle_since[rank] = Some(Instant::now());
        }
        if !self.idle.contains(&rank) {
            self.idle.push(rank);
        }
    }

    fn track_active(&mut self) {
        let active = self.assigned.len();
        if active > self.stats.max_active {
            self.stats.max_active = active;
            self.stats.first_max_active_time = self.elapsed();
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Racing => "racing",
            Phase::Normal => "normal",
        }
    }

    /// The live counterpart of the final statistics: everything the
    /// paper's tables report, computed from the coordinator's current
    /// state instead of at shutdown.
    fn progress_snapshot(&self) -> ProgressMsg {
        let wall = self.elapsed();
        let n = self.comm.num_workers();
        let mut idle_sum = 0.0;
        for rank in 0..n {
            idle_sum += self.idle_total[rank]
                + self.idle_since[rank].map_or(0.0, |s| s.elapsed().as_secs_f64());
        }
        let primal = self.incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
        let dual = self.global_dual_bound().min(primal);
        let in_flight: u64 = self.statuses.values().map(|(_, _, n)| *n).sum();
        ProgressMsg {
            wall,
            phase: self.phase_name().into(),
            primal_bound: primal,
            dual_bound: dual,
            gap_percent: crate::stats::gap_percent(primal, dual),
            open_nodes: (self.queue.len() + self.assigned.len()) as u64,
            nodes: self.stats.nodes_total + in_flight,
            transferred: self.stats.transferred,
            collected: self.stats.collected,
            incumbents: self.stats.incumbents_seen,
            active: self.assigned.len(),
            idle_percent: 100.0 * idle_sum / (n as f64 * wall).max(1e-9),
            workers_died: self.stats.workers_died,
        }
    }

    /// Emits a progress snapshot to the journal and the progress sink,
    /// rate-limited to the status interval (but never faster than 20 Hz).
    fn maybe_progress(&mut self) {
        if !self.opts.telemetry.enabled() {
            return;
        }
        let interval = self.opts.status_interval.max(0.05);
        if self.last_progress.elapsed().as_secs_f64() < interval {
            return;
        }
        self.last_progress = Instant::now();
        let msg = self.progress_snapshot();
        self.opts.telemetry.progress(&msg);
    }

    /// Pops the queued subproblem with the best (lowest) dual bound — the
    /// heaviest expected subtree.
    fn pop_best(&mut self) -> Option<SubproblemMsg<Sub>> {
        if self.queue.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.queue.len() {
            if self.queue[i].dual_bound < self.queue[best].dual_bound {
                best = i;
            }
        }
        Some(self.queue.swap_remove(best))
    }

    fn global_dual_bound(&self) -> f64 {
        let mut b = f64::INFINITY;
        for s in &self.queue {
            b = b.min(s.dual_bound);
        }
        for (rank, sub) in &self.assigned {
            let sb = self
                .statuses
                .get(rank)
                .map(|(d, _, _)| *d)
                .unwrap_or(f64::NEG_INFINITY)
                .max(sub.dual_bound);
            b = b.min(sb);
        }
        b
    }

    fn handle(&mut self, msg: Message<Sub, Sol>) -> Option<bool> {
        match msg {
            Message::SolutionFound { rank, sol, obj } => {
                let improves = self.incumbent.as_ref().is_none_or(|(_, cur)| obj < *cur - 1e-9);
                if improves {
                    self.incumbent = Some((sol.clone(), obj));
                    self.stats.incumbents_seen += 1;
                    self.opts.telemetry.log(TelemetryEvent::Incumbent { obj });
                    // Broadcast to everyone (the finder dedups on its side).
                    let _ = rank;
                    self.comm.broadcast(&Message::Incumbent { sol, obj });
                    // Prune the pool.
                    let cutoff = self.cutoff();
                    self.queue.retain(|s| s.dual_bound < cutoff);
                }
            }
            Message::Status { rank, dual_bound, open, nodes } => {
                self.statuses.insert(rank, (dual_bound, open, nodes));
            }
            Message::ExportedNode { rank, sub } => {
                self.stats.collected += 1;
                self.opts
                    .telemetry
                    .log(TelemetryEvent::Collected { rank, dual_bound: sub.dual_bound });
                if sub.dual_bound < self.cutoff() {
                    self.queue.push(sub);
                }
            }
            Message::Completed { rank, dual_bound, nodes, aborted } => {
                self.stats.nodes_total += nodes;
                self.statuses.remove(&rank);
                if self.phase == Phase::Racing && !aborted {
                    // A racer finished the root: the whole instance is
                    // solved (its bound is global).
                    self.assigned.remove(&rank);
                    self.mark_idle(rank);
                    if !dual_bound.is_finite() || self.incumbent.is_none() {
                        // Infeasible instance.
                        self.stats.dual_bound = f64::INFINITY;
                    }
                    return Some(true); // solved
                }
                self.assigned.remove(&rank);
                self.mark_idle(rank);
                let _ = dual_bound;
            }
            // The transport's last resort: on a v2 session this only
            // arrives after the reconnect budget ran out (transient
            // drops are healed below this layer and never surface
            // here); it is raised at most once per rank, and `dead`
            // makes requeueing idempotent regardless.
            Message::WorkerDied { rank } if self.dead.insert(rank) => {
                self.stats.workers_died += 1;
                self.opts.telemetry.log(TelemetryEvent::WorkerDied { rank });
                self.mark_busy(rank); // freeze its idle accounting
                self.idle.retain(|&r| r != rank);
                self.abort_sent.remove(&rank);
                let last_status_bound = self.statuses.remove(&rank).map(|(d, _, _)| d);
                if let Some(mut sub) = self.assigned.remove(&rank) {
                    if self.phase == Phase::Racing {
                        // The surviving racers still hold the same
                        // root; only when the *last* racer dies is
                        // there work to recover.
                        if self.assigned.is_empty() {
                            self.phase = Phase::Normal;
                            self.queue.push(SubproblemMsg {
                                sub: self.root.clone(),
                                dual_bound: f64::NEG_INFINITY,
                            });
                        }
                    } else {
                        // Requeue at the freshest bound the dead
                        // worker reported, so re-solving the subtree
                        // never regresses the global dual bound.
                        if let Some(d) = last_status_bound {
                            sub.dual_bound = sub.dual_bound.max(d);
                        }
                        self.queue.push(sub);
                    }
                }
            }
            // Downward tags are handled by workers.
            _ => {}
        }
        None
    }

    fn send_sub(&mut self, rank: usize, sub: SubproblemMsg<Sub>, settings_index: Option<usize>) {
        self.mark_busy(rank);
        self.idle.retain(|&r| r != rank);
        let settings = settings_index.map(|i| match &self.opts.ramp_up {
            RampUp::Racing { settings, .. } => settings[i % settings.len()].clone(),
            RampUp::Normal => crate::settings::SolverSettings::default_bundle(),
        });
        self.abort_sent.remove(&rank);
        self.assigned.insert(rank, sub.clone());
        self.opts.telemetry.log(TelemetryEvent::Transferred { rank, dual_bound: sub.dual_bound });
        self.comm.send_to(
            rank,
            Message::Subproblem { sub, incumbent: self.incumbent.clone(), settings },
        );
        self.stats.transferred += 1;
        self.track_active();
    }

    fn start_racing(&mut self) {
        let n = self.comm.num_workers();
        let root = SubproblemMsg { sub: self.root.clone(), dual_bound: f64::NEG_INFINITY };
        self.phase = Phase::Racing;
        for rank in 0..n {
            self.racing_settings_of_rank.insert(rank, rank);
            self.send_sub(rank, root.clone(), Some(rank));
        }
        self.queue.clear();
    }

    fn racing_trigger_fired(&self) -> bool {
        let RampUp::Racing { time_trigger, open_nodes_trigger, .. } = &self.opts.ramp_up else {
            return false;
        };
        if self.elapsed() >= *time_trigger {
            return true;
        }
        self.statuses.values().any(|(_, open, _)| *open >= *open_nodes_trigger)
    }

    fn finish_racing(&mut self) {
        // Winner: best (largest) dual bound — it has progressed the most —
        // with open-node count as tie-break (the paper: "a combination of
        // the lower bound and the number of open nodes").
        let winner = self
            .assigned
            .keys()
            .copied()
            .max_by(|a, b| {
                let sa = self.statuses.get(a).copied().unwrap_or((f64::NEG_INFINITY, 0, 0));
                let sb = self.statuses.get(b).copied().unwrap_or((f64::NEG_INFINITY, 0, 0));
                sa.0.partial_cmp(&sb.0).unwrap_or(std::cmp::Ordering::Equal).then(sa.1.cmp(&sb.1))
            })
            .unwrap_or(0);
        self.racing_winner = Some(self.racing_settings_of_rank.get(&winner).copied().unwrap_or(0));
        self.stats.racing_winner = self.racing_winner;
        self.opts.telemetry.log(TelemetryEvent::RacingWinner {
            winner_rank: winner,
            settings_index: self.racing_winner.unwrap_or(0),
        });
        for rank in self.assigned.keys().copied().collect::<Vec<_>>() {
            if rank != winner {
                self.comm.send_to(rank, Message::AbortSubproblem);
            }
        }
        // The winner feeds the pool; its own subtree remainder keeps it busy.
        self.comm.send_to(winner, Message::StartCollecting);
        self.collect_mode = true;
        self.phase = Phase::Normal;
        self.opts.telemetry.log(TelemetryEvent::Phase { phase: "normal".into() });
    }

    fn manage_collect_mode(&mut self) {
        if self.phase != Phase::Normal || self.assigned.is_empty() {
            return;
        }
        // With a single solver the pool can never feed anyone else;
        // collecting would only make the lone worker ship nodes to the
        // coordinator and receive them back.
        if self.comm.num_workers() == 1 {
            return;
        }
        let want =
            ((self.idle.len() as f64 + 1.0) * self.opts.pool_target_per_solver).ceil() as usize;
        if !self.collect_mode && self.queue.len() < want {
            for rank in self.assigned.keys() {
                self.comm.send_to(*rank, Message::StartCollecting);
            }
            self.collect_mode = true;
        } else if self.collect_mode && self.queue.len() >= want + self.comm.num_workers() {
            for rank in self.assigned.keys() {
                self.comm.send_to(*rank, Message::StopCollecting);
            }
            self.collect_mode = false;
        }
    }

    fn build_checkpoint(&self) -> Checkpoint<Sub, Sol> {
        // Assigned subtree roots carry the solver's freshest reported
        // bound, so restarts never regress the chain's dual bound.
        let assigned = self
            .assigned
            .iter()
            .map(|(rank, sub)| {
                let mut sub = sub.clone();
                if let Some((d, _, _)) = self.statuses.get(rank) {
                    sub.dual_bound = sub.dual_bound.max(*d);
                }
                sub
            })
            .collect();
        Checkpoint {
            queue: self.queue.clone(),
            assigned,
            incumbent: self.incumbent.clone(),
            dual_bound: self.global_dual_bound(),
            nodes_so_far: self.carried_nodes + self.stats.nodes_total,
            transferred_so_far: self.carried_transferred + self.stats.transferred,
            wall_time_so_far: self.carried_wall + self.elapsed(),
            run_index: self.run_index,
        }
    }

    /// True when the run must stop *unfinished*: wall-clock limit, node
    /// limit, or an external cancellation flag. All three funnel into
    /// the same orderly shutdown (abort everyone, drain `Completed`
    /// reports, checkpoint the primitive nodes).
    fn hit_limit(&self) -> bool {
        if self.elapsed() >= self.opts.time_limit {
            return true;
        }
        if let Some(cancel) = &self.opts.cancel {
            if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(limit) = self.opts.node_limit {
            // Completed subtrees plus the freshest in-flight counts.
            let in_flight: u64 = self.statuses.values().map(|(_, _, n)| *n).sum();
            if self.stats.nodes_total + in_flight >= limit {
                return true;
            }
        }
        false
    }

    fn maybe_periodic_checkpoint(&mut self) {
        if self.opts.checkpoint_interval <= 0.0 {
            return;
        }
        if self.last_checkpoint.elapsed().as_secs_f64() >= self.opts.checkpoint_interval {
            self.last_checkpoint = Instant::now();
            if let Some(path) = self.opts.checkpoint_path.clone() {
                let cp = self.build_checkpoint();
                if cp.save(&path).is_ok() {
                    self.opts.telemetry.log(TelemetryEvent::CheckpointSaved {
                        primitive_nodes: cp.num_primitive_nodes(),
                    });
                }
            }
        }
    }

    /// Runs the coordination loop to completion (or the time limit).
    pub fn run(&mut self) -> ParallelResult<Sub, Sol> {
        // ---- initialization: restart, racing or normal ramp-up --------
        if let Some(cp_json) = self.opts.restart_from.clone() {
            match serde_json::from_str::<Checkpoint<Sub, Sol>>(&cp_json) {
                Ok(cp) => {
                    self.queue = cp.queue;
                    self.queue.extend(cp.assigned);
                    self.incumbent = cp.incumbent;
                    self.carried_nodes = cp.nodes_so_far;
                    self.carried_transferred = cp.transferred_so_far;
                    self.carried_wall = cp.wall_time_so_far;
                    self.run_index = cp.run_index + 1;
                }
                Err(e) => {
                    // Degrade to a from-scratch run rather than losing
                    // the job, but say so: a torn checkpoint means the
                    // chain's carried statistics are gone.
                    eprintln!(
                        "ugrs: restart_from checkpoint unreadable ({e}); solving from scratch"
                    );
                }
            }
        }
        self.opts.telemetry.log(TelemetryEvent::RunStarted {
            workers: self.comm.num_workers(),
            run_index: self.run_index,
            restarted: self.run_index > 1,
        });
        let racing_possible = matches!(self.opts.ramp_up, RampUp::Racing { .. })
            && self.comm.num_workers() > 1
            && self.queue.is_empty();
        if racing_possible {
            self.start_racing();
        } else if self.queue.is_empty() {
            self.queue
                .push(SubproblemMsg { sub: self.root.clone(), dual_bound: f64::NEG_INFINITY });
        }
        self.opts.telemetry.log(TelemetryEvent::Phase { phase: self.phase_name().into() });

        let mut solved = false;
        let mut hit_time_limit = false;
        loop {
            // ---- drain messages ---------------------------------------
            let mut first = true;
            loop {
                let timeout = if first { Duration::from_millis(2) } else { Duration::ZERO };
                first = false;
                let Some(msg) = self.comm.recv_timeout(timeout) else { break };
                if let Some(s) = self.handle(msg) {
                    solved = s;
                }
            }
            if solved {
                break;
            }

            // ---- worker attrition -------------------------------------
            // Every worker is gone: nobody is left to assign the
            // requeued work to. Stop unsolved; the checkpoint below
            // preserves the queue for a restart with fresh workers.
            if self.dead.len() >= self.comm.num_workers() {
                break;
            }

            // ---- racing management ------------------------------------
            if self.phase == Phase::Racing && self.racing_trigger_fired() {
                self.finish_racing();
            }

            // ---- normal-phase management -------------------------------
            if self.phase == Phase::Normal {
                // Bound-based termination: when every queued subproblem and
                // every active solver's reported bound is dominated by the
                // incumbent, nothing left can improve — abort the stragglers
                // (they drain through the normal Completed path).
                if self.incumbent.is_some() {
                    let cutoff = self.cutoff();
                    self.queue.retain(|s| s.dual_bound < cutoff);
                    if !self.assigned.is_empty() && self.global_dual_bound() >= cutoff {
                        for rank in self.assigned.keys() {
                            if self.abort_sent.insert(*rank) {
                                self.comm.send_to(*rank, Message::AbortSubproblem);
                            }
                        }
                    }
                }
                // Assignment.
                while !self.idle.is_empty() && !self.queue.is_empty() {
                    let sub = self.pop_best().unwrap();
                    let rank = self.idle[0];
                    self.send_sub(rank, sub, None);
                }
                self.manage_collect_mode();
                // Termination: pool empty, nobody working.
                if self.queue.is_empty() && self.assigned.is_empty() {
                    solved = true;
                    break;
                }
            }

            // ---- limits and checkpoints --------------------------------
            if self.hit_limit() {
                hit_time_limit = true;
                break;
            }
            self.maybe_periodic_checkpoint();
            self.maybe_progress();
        }

        // ---- shutdown -------------------------------------------------
        let final_dual = if hit_time_limit || !solved {
            self.global_dual_bound()
        } else {
            self.incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o)
        };
        if hit_time_limit {
            // Abort everyone, wait (bounded) for their Completed reports.
            for rank in self.assigned.keys() {
                self.comm.send_to(*rank, Message::AbortSubproblem);
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            while !self.assigned.is_empty() && Instant::now() < deadline {
                if let Some(msg) = self.comm.recv_timeout(Duration::from_millis(20)) {
                    // Keep the assigned map: aborted subtree roots are the
                    // primitive nodes the checkpoint must retain.
                    if let Message::Completed { rank, nodes, aborted, .. } = &msg {
                        self.stats.nodes_total += nodes;
                        let (r, ab) = (*rank, *aborted);
                        let last_status_bound = self.statuses.remove(&r).map(|(d, _, _)| d);
                        // Move an *aborted* root back into the queue so the
                        // checkpoint sees it exactly once; a subproblem that
                        // completed normally in the shutdown race is done.
                        // Its bound is upgraded to the solver's last status
                        // report — otherwise restarts would resume from the
                        // stale creation-time bound and the chain's dual
                        // bound could regress.
                        if let Some(mut sub) = self.assigned.remove(&r) {
                            if ab {
                                if let Some(d) = last_status_bound {
                                    sub.dual_bound = sub.dual_bound.max(d);
                                }
                                self.queue.push(sub);
                            }
                        }
                        self.mark_idle(r);
                    } else if let Some(s) = self.handle(msg) {
                        solved = s;
                    }
                }
            }
        }
        self.comm.broadcast(&Message::Terminate);

        // ---- statistics & checkpoint -----------------------------------
        let wall = self.elapsed();
        let n = self.comm.num_workers();
        let mut idle_sum = 0.0;
        for rank in 0..n {
            idle_sum += self.idle_total[rank]
                + self.idle_since[rank].map_or(0.0, |s| s.elapsed().as_secs_f64());
        }
        self.stats.wall_time = wall;
        self.stats.idle_percent = 100.0 * idle_sum / (n as f64 * wall).max(1e-9);
        self.stats.open_nodes = (self.queue.len() + self.assigned.len()) as u64;
        // Restart-chain accounting (Table 2's run 1.k rows): this run's
        // index plus the cumulative totals including carried history.
        self.stats.run_index = self.run_index;
        self.stats.nodes_so_far = self.carried_nodes + self.stats.nodes_total;
        self.stats.wall_time_so_far = self.carried_wall + wall;
        self.stats.primal_bound = self.incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
        self.stats.dual_bound = if solved && !hit_time_limit {
            self.stats.primal_bound.min(final_dual)
        } else {
            final_dual
        };
        if solved && !hit_time_limit && self.incumbent.is_none() {
            self.stats.dual_bound = f64::INFINITY; // proven infeasible
        }

        let checkpoint = if hit_time_limit || !solved {
            let cp = self.build_checkpoint();
            if let Some(path) = &self.opts.checkpoint_path {
                if cp.save(path).is_ok() {
                    self.opts.telemetry.log(TelemetryEvent::CheckpointSaved {
                        primitive_nodes: cp.num_primitive_nodes(),
                    });
                }
            }
            Some(cp)
        } else {
            None
        };

        if self.opts.telemetry.enabled() {
            // One last snapshot mirroring the final statistics (so
            // gap-over-time series end at the authoritative state), then
            // the final statistics themselves.
            let msg = ProgressMsg {
                wall: self.stats.wall_time,
                phase: self.phase_name().into(),
                primal_bound: self.stats.primal_bound,
                dual_bound: self.stats.dual_bound,
                gap_percent: self.stats.gap_percent(),
                open_nodes: self.stats.open_nodes,
                nodes: self.stats.nodes_total,
                transferred: self.stats.transferred,
                collected: self.stats.collected,
                incumbents: self.stats.incumbents_seen,
                active: self.assigned.len(),
                idle_percent: self.stats.idle_percent,
                workers_died: self.stats.workers_died,
            };
            self.opts.telemetry.progress(&msg);
            self.opts.telemetry.log(TelemetryEvent::RunFinished { stats: self.stats.clone() });
        }

        ParallelResult {
            solution: self.incumbent.clone(),
            dual_bound: self.stats.dual_bound,
            solved: solved && !hit_time_limit,
            stats: self.stats.clone(),
            final_checkpoint: checkpoint,
        }
    }
}
