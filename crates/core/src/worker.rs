//! The ParaSolver: wraps one base-solver instance per received
//! subproblem and runs Algorithm 2 of the paper.

use crate::comm::WorkerComm;
use crate::messages::{Message, SubproblemMsg};
use crate::settings::SolverSettings;
use std::time::{Duration, Instant};

/// What a base solver reports after working on one subproblem.
#[derive(Clone, Copy, Debug)]
pub struct SubproblemOutcome {
    /// Proven (or, when aborted, best-known) dual bound for the subtree.
    pub dual_bound: f64,
    /// B&B nodes processed.
    pub nodes: u64,
    /// True when the solve stopped on an external abort.
    pub aborted: bool,
}

/// The control surface handed to a base solver while it works on a
/// subproblem — the callbacks of Algorithm 2 (report solutions and
/// status, receive incumbents and collect-mode toggles, honor aborts).
pub trait ParaControl<Sub, Sol> {
    /// Poll between nodes; `true` means stop as soon as possible.
    fn should_abort(&mut self) -> bool;
    /// Report a newly found feasible solution.
    fn on_solution(&mut self, sol: Sol, obj: f64);
    /// Fetch an incumbent that arrived from another solver, if any.
    fn poll_incumbent(&mut self) -> Option<(Sol, f64)>;
    /// Periodic progress report (rate-limited internally). `dual_bound`
    /// MUST be a valid lower bound for the solver's *entire remaining
    /// subproblem* (not just the node in hand): the coordinator uses it
    /// for global-bound termination, racing winner selection and
    /// checkpoint bounds.
    fn on_status(&mut self, dual_bound: f64, open: usize, nodes: u64);
    /// True while the LoadCoordinator wants open nodes exported.
    fn collect_requested(&mut self) -> bool;
    /// Hand an open subproblem to the LoadCoordinator.
    fn export_subproblem(&mut self, sub: Sub, dual_bound: f64);
}

/// A base solver that UG can parallelize. One instance is constructed
/// *per received subproblem* (which is what makes the paper's layered
/// presolving happen: the instance re-presolves its subproblem).
pub trait BaseSolver: Send {
    /// Solver-independent subproblem description.
    type Sub: Clone + Send + serde::Serialize + serde::de::DeserializeOwned + 'static;
    /// Solver-independent solution description.
    type Sol: Clone + Send + serde::Serialize + serde::de::DeserializeOwned + 'static;

    /// Solves `sub` (to completion or until aborted), driving the
    /// callbacks on `ctl`. `known_bound` is the dual bound the
    /// coordinator already holds for this subproblem (−∞ for the root);
    /// the solver must never report or export anything weaker.
    fn solve_subproblem(
        &mut self,
        sub: &Self::Sub,
        known_bound: f64,
        incumbent: Option<&Self::Sol>,
        ctl: &mut dyn ParaControl<Self::Sub, Self::Sol>,
    ) -> SubproblemOutcome;
}

/// Factory constructing a fresh base-solver instance for a subproblem
/// under the given racing settings.
pub type SolverFactory<S> =
    std::sync::Arc<dyn Fn(usize, &SolverSettings) -> S + Send + Sync + 'static>;

/// The concrete [`ParaControl`] wired to the communicator.
pub struct WorkerCtl<'a, Sub, Sol> {
    comm: &'a WorkerComm<Sub, Sol>,
    rank: usize,
    collect: bool,
    abort: bool,
    terminate_seen: bool,
    pending_incumbent: Option<(Sol, f64)>,
    last_status: Instant,
    status_interval: Duration,
    exported: u64,
}

impl<'a, Sub, Sol> WorkerCtl<'a, Sub, Sol>
where
    Sub: serde::Serialize + serde::de::DeserializeOwned,
    Sol: serde::Serialize + serde::de::DeserializeOwned,
{
    fn new(comm: &'a WorkerComm<Sub, Sol>, rank: usize, status_interval: Duration) -> Self {
        WorkerCtl {
            comm,
            rank,
            collect: false,
            abort: false,
            terminate_seen: false,
            pending_incumbent: None,
            last_status: Instant::now(),
            status_interval,
            exported: 0,
        }
    }

    /// Drains pending control messages.
    fn pump(&mut self) {
        while let Some(msg) = self.comm.try_recv() {
            match msg {
                Message::Incumbent { sol, obj } => {
                    let better = self.pending_incumbent.as_ref().is_none_or(|(_, cur)| obj < *cur);
                    if better {
                        self.pending_incumbent = Some((sol, obj));
                    }
                }
                Message::StartCollecting => self.collect = true,
                Message::StopCollecting => self.collect = false,
                Message::AbortSubproblem => self.abort = true,
                Message::Terminate => {
                    self.abort = true;
                    self.terminate_seen = true;
                }
                // Subproblem while busy should not happen; drop defensively.
                _ => {}
            }
        }
    }
}

impl<Sub, Sol> ParaControl<Sub, Sol> for WorkerCtl<'_, Sub, Sol>
where
    Sub: serde::Serialize + serde::de::DeserializeOwned,
    Sol: serde::Serialize + serde::de::DeserializeOwned,
{
    fn should_abort(&mut self) -> bool {
        self.pump();
        self.abort
    }

    fn on_solution(&mut self, sol: Sol, obj: f64) {
        self.comm.send(Message::SolutionFound { rank: self.rank, sol, obj });
    }

    fn poll_incumbent(&mut self) -> Option<(Sol, f64)> {
        self.pump();
        self.pending_incumbent.take()
    }

    fn on_status(&mut self, dual_bound: f64, open: usize, nodes: u64) {
        if self.last_status.elapsed() >= self.status_interval {
            self.last_status = Instant::now();
            self.comm.send(Message::Status { rank: self.rank, dual_bound, open, nodes });
        }
    }

    fn collect_requested(&mut self) -> bool {
        self.pump();
        self.collect
    }

    fn export_subproblem(&mut self, sub: Sub, dual_bound: f64) {
        self.exported += 1;
        self.comm.send(Message::ExportedNode {
            rank: self.rank,
            sub: SubproblemMsg { sub, dual_bound },
        });
    }
}

/// A fidelity wrapper asserting distributed-memory readiness: every
/// subproblem entering and every solution leaving the wrapped solver is
/// round-tripped through its serde byte representation, exactly as an
/// MPI back-end would ship it. `ThreadComm` itself moves values in
/// process; wrapping the base solver in this adapter proves the
/// solver-independent forms really are self-contained (no hidden shared
/// state) — UG's core design requirement (§2.2).
pub struct SerdeFidelity<S: BaseSolver>(pub S);

impl<S: BaseSolver> BaseSolver for SerdeFidelity<S> {
    type Sub = S::Sub;
    type Sol = S::Sol;

    fn solve_subproblem(
        &mut self,
        sub: &S::Sub,
        known_bound: f64,
        incumbent: Option<&S::Sol>,
        ctl: &mut dyn ParaControl<S::Sub, S::Sol>,
    ) -> SubproblemOutcome {
        let bytes = serde_json::to_vec(sub).expect("subproblem must serialize");
        let sub: S::Sub = serde_json::from_slice(&bytes).expect("subproblem must deserialize");
        let incumbent: Option<S::Sol> = incumbent.map(|s| {
            let b = serde_json::to_vec(s).expect("solution must serialize");
            serde_json::from_slice(&b).expect("solution must deserialize")
        });
        let mut bridge = SerdeBridge { inner: ctl };
        self.0.solve_subproblem(&sub, known_bound, incumbent.as_ref(), &mut bridge)
    }
}

struct SerdeBridge<'a, Sub, Sol> {
    inner: &'a mut dyn ParaControl<Sub, Sol>,
}

impl<Sub, Sol> ParaControl<Sub, Sol> for SerdeBridge<'_, Sub, Sol>
where
    Sub: serde::Serialize + serde::de::DeserializeOwned,
    Sol: serde::Serialize + serde::de::DeserializeOwned,
{
    fn should_abort(&mut self) -> bool {
        self.inner.should_abort()
    }
    fn on_solution(&mut self, sol: Sol, obj: f64) {
        let b = serde_json::to_vec(&sol).expect("solution must serialize");
        self.inner.on_solution(serde_json::from_slice(&b).unwrap(), obj);
    }
    fn poll_incumbent(&mut self) -> Option<(Sol, f64)> {
        self.inner.poll_incumbent().map(|(s, o)| {
            let b = serde_json::to_vec(&s).expect("solution must serialize");
            (serde_json::from_slice(&b).unwrap(), o)
        })
    }
    fn on_status(&mut self, dual_bound: f64, open: usize, nodes: u64) {
        self.inner.on_status(dual_bound, open, nodes);
    }
    fn collect_requested(&mut self) -> bool {
        self.inner.collect_requested()
    }
    fn export_subproblem(&mut self, sub: Sub, dual_bound: f64) {
        let b = serde_json::to_vec(&sub).expect("subproblem must serialize");
        self.inner.export_subproblem(serde_json::from_slice(&b).unwrap(), dual_bound);
    }
}

/// The worker main loop (Algorithm 2): waits for subproblems, solves
/// them with a freshly constructed base-solver instance, reports
/// completion; exits on `Terminate`.
pub fn worker_loop<S: BaseSolver>(
    comm: WorkerComm<S::Sub, S::Sol>,
    factory: SolverFactory<S>,
    status_interval: Duration,
) {
    let rank = comm.rank();
    loop {
        let Some(msg) = comm.recv() else { return };
        match msg {
            Message::Terminate => return,
            Message::Subproblem { sub, incumbent, settings } => {
                let settings = settings.unwrap_or_else(SolverSettings::default_bundle);
                let mut solver = factory(rank, &settings);
                let mut ctl = WorkerCtl::new(&comm, rank, status_interval);
                if let Some((sol, obj)) = incumbent {
                    ctl.pending_incumbent = Some((sol, obj));
                }
                let outcome = solver.solve_subproblem(
                    &sub.sub,
                    sub.dual_bound,
                    ctl.pending_incumbent.clone().map(|p| p.0).as_ref(),
                    &mut ctl,
                );
                let terminate_after = ctl.terminate_seen;
                comm.send(Message::Completed {
                    rank,
                    dual_bound: outcome.dual_bound.max(sub.dual_bound),
                    nodes: outcome.nodes,
                    aborted: outcome.aborted,
                });
                if terminate_after {
                    return;
                }
            }
            // Control messages while idle are stale; ignore.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::thread_comm;

    /// A trivial base solver: "solves" by echoing a solution equal to the
    /// subproblem value.
    struct Echo;
    impl BaseSolver for Echo {
        type Sub = f64;
        type Sol = f64;
        fn solve_subproblem(
            &mut self,
            sub: &f64,
            _known_bound: f64,
            _inc: Option<&f64>,
            ctl: &mut dyn ParaControl<f64, f64>,
        ) -> SubproblemOutcome {
            ctl.on_solution(*sub, *sub);
            SubproblemOutcome { dual_bound: *sub, nodes: 1, aborted: false }
        }
    }

    #[test]
    fn worker_solves_and_reports() {
        let (lc, mut workers) = thread_comm::<f64, f64>(1);
        let w = workers.remove(0);
        let factory: SolverFactory<Echo> = std::sync::Arc::new(|_, _| Echo);
        let h = std::thread::spawn(move || worker_loop(w, factory, Duration::from_millis(10)));
        lc.send_to(
            0,
            Message::Subproblem {
                sub: SubproblemMsg { sub: 7.0, dual_bound: f64::NEG_INFINITY },
                incumbent: None,
                settings: None,
            },
        );
        let m1 = lc.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m1.tag(), "solutionFound");
        let m2 = lc.recv_timeout(Duration::from_secs(1)).unwrap();
        match m2 {
            Message::Completed { dual_bound, nodes, aborted, .. } => {
                assert_eq!(dual_bound, 7.0);
                assert_eq!(nodes, 1);
                assert!(!aborted);
            }
            other => panic!("unexpected {other:?}"),
        }
        lc.send_to(0, Message::Terminate);
        h.join().unwrap();
    }

    #[test]
    fn abort_flag_propagates() {
        struct Spinner;
        impl BaseSolver for Spinner {
            type Sub = f64;
            type Sol = f64;
            fn solve_subproblem(
                &mut self,
                _sub: &f64,
                _known_bound: f64,
                _inc: Option<&f64>,
                ctl: &mut dyn ParaControl<f64, f64>,
            ) -> SubproblemOutcome {
                let mut n = 0u64;
                while !ctl.should_abort() {
                    n += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                SubproblemOutcome { dual_bound: 0.0, nodes: n, aborted: true }
            }
        }
        let (lc, mut workers) = thread_comm::<f64, f64>(1);
        let w = workers.remove(0);
        let factory: SolverFactory<Spinner> = std::sync::Arc::new(|_, _| Spinner);
        let h = std::thread::spawn(move || worker_loop(w, factory, Duration::from_millis(10)));
        lc.send_to(
            0,
            Message::Subproblem {
                sub: SubproblemMsg { sub: 1.0, dual_bound: f64::NEG_INFINITY },
                incumbent: None,
                settings: None,
            },
        );
        std::thread::sleep(Duration::from_millis(20));
        lc.send_to(0, Message::AbortSubproblem);
        let m = lc.recv_timeout(Duration::from_secs(2)).unwrap();
        match m {
            Message::Completed { aborted, .. } => assert!(aborted),
            other => panic!("unexpected {other:?}"),
        }
        lc.send_to(0, Message::Terminate);
        h.join().unwrap();
    }
}
