//! Racing settings: opaque, solver-specific parameter bundles.
//!
//! UG's racing ramp-up gives every ParaSolver "different parameter
//! settings and permutations of variables and constraints" (§2.2). The
//! framework itself does not interpret the parameters — they are an
//! opaque JSON value the base-solver factory decodes (mirroring UG's
//! solver-specific settings files, and the *customized racing* feature
//! that lets users supply problem-specific racing parameter sets).

/// One racing parameter bundle.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SolverSettings {
    /// Position in the racing settings list (Figure 1's x-axis).
    pub index: usize,
    /// Human-readable name (e.g. `"sdp-default"`, `"lp-easycip"`).
    pub name: String,
    /// Solver-specific parameters, decoded by the factory.
    pub params: serde_json::Value,
}

impl SolverSettings {
    /// The default settings bundle (index 0, empty parameters).
    pub fn default_bundle() -> Self {
        SolverSettings { index: 0, name: "default".into(), params: serde_json::Value::Null }
    }

    /// A simple seeded variant: same parameters, different permutation
    /// seed — the minimal diversification UG applies when the user gives
    /// no custom racing set.
    pub fn seeded(index: usize) -> Self {
        SolverSettings {
            index,
            name: format!("seed-{index}"),
            params: serde_json::json!({ "seed": index as u64 }),
        }
    }

    /// Generates `n` default racing bundles (seed diversification only).
    pub fn default_racing_set(n: usize) -> Vec<SolverSettings> {
        (0..n).map(Self::seeded).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_racing_set_has_distinct_seeds() {
        let set = SolverSettings::default_racing_set(4);
        assert_eq!(set.len(), 4);
        for (i, s) in set.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.params["seed"], serde_json::json!(i as u64));
        }
    }

    #[test]
    fn serde_round_trip() {
        let s = SolverSettings::seeded(3);
        let j = serde_json::to_string(&s).unwrap();
        let back: SolverSettings = serde_json::from_str(&j).unwrap();
        assert_eq!(back.index, 3);
        assert_eq!(back.name, "seed-3");
    }
}
