//! `ug-instances` — the instance-zoo CLI.
//!
//! ```text
//! ug-instances generate --dir <dir> [--seed <n>]
//! ug-instances validate --dir <dir>
//! ug-instances info <file.stp|file.cbf|file.mc>
//! ug-instances checksum <file>
//! ```
//!
//! `generate` writes the standard small catalog (one or more instances
//! per family with a `manifest.json`), `validate` re-checksums and
//! re-parses every entry, `info` strictly parses a single file and
//! prints its vitals, and `checksum` prints the FNV-1a 64 of a file's
//! bytes — the same value recorded in job ledgers and telemetry
//! journals by `ugd submit --file`.

use std::path::Path;
use ugrs_instances::{catalog, cbf, file_checksum, maxcut, stp, Catalog};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ug-instances: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: ug-instances generate --dir <dir> [--seed <n>]\n\
         \x20      ug-instances validate --dir <dir>\n\
         \x20      ug-instances info <file.stp|file.cbf|file.mc>\n\
         \x20      ug-instances checksum <file>"
    );
    std::process::exit(2);
}

struct Opts {
    dir: Option<String>,
    seed: u64,
    positional: Option<String>,
}

fn parse_opts(mut it: std::env::Args) -> Result<Opts, String> {
    let mut o = Opts { dir: None, seed: 1, positional: None };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--dir" => o.dir = Some(value("--dir")?),
            "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            other if !other.starts_with('-') && o.positional.is_none() => {
                o.positional = Some(other.to_string())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

fn info(path: &Path) {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let sum = file_checksum(path).unwrap_or_else(|e| fail(format!("cannot read {path:?}: {e}")));
    match ext {
        "stp" => {
            let inst = stp::read_stp(path).unwrap_or_else(|e| fail(e));
            println!("format:    stp (SteinLib)");
            println!("name:      {}", inst.name);
            println!("nodes:     {}", inst.nodes);
            println!("edges:     {}", inst.edges.len());
            println!("terminals: {}", inst.terminals.len());
            println!("checksum:  {sum}");
        }
        "cbf" => {
            let p = cbf::read_cbf(path).unwrap_or_else(|e| fail(e));
            println!("format:    cbf (CBF-lite MISDP)");
            println!("name:      {}", p.name);
            println!("vars:      {}", p.m);
            println!("integers:  {}", p.integer.iter().filter(|&&i| i).count());
            println!("blocks:    {:?}", p.blocks.iter().map(|b| b.dim).collect::<Vec<_>>());
            println!("lin rows:  {}", p.lin.len());
            println!("checksum:  {sum}");
        }
        "mc" => {
            let inst = maxcut::read_mc(path).unwrap_or_else(|e| fail(e));
            println!("format:    mc (max-cut edge list)");
            println!("name:      {}", inst.name);
            println!("nodes:     {}", inst.n);
            println!("edges:     {}", inst.edges.len());
            println!("weight:    {}", inst.total_weight());
            println!("checksum:  {sum}");
        }
        _ => fail(format!("unknown instance type {path:?} (expected .stp, .cbf or .mc)")),
    }
}

fn main() {
    let mut argv = std::env::args();
    argv.next();
    let Some(cmd) = argv.next() else { usage() };
    let o = parse_opts(argv).unwrap_or_else(|e| {
        eprintln!("ug-instances: {e}");
        usage()
    });
    match cmd.as_str() {
        "generate" => {
            let Some(dir) = o.dir.as_deref() else { usage() };
            let dir = Path::new(dir);
            let cat = catalog::generate_small_catalog(dir, o.seed)
                .unwrap_or_else(|e| fail(format!("cannot write catalog: {e}")));
            println!("generated {} instances into {}", cat.entries.len(), dir.display());
            for e in &cat.entries {
                let opt = e.reference_optimum.map_or("-".to_string(), |v| format!("{v}"));
                println!(
                    "  {:<18} {:<16} {:<4} n={:<5} m={:<5} opt={:<8} {}",
                    e.name, e.family, e.format, e.nodes, e.edges, opt, e.checksum
                );
            }
        }
        "validate" => {
            let Some(dir) = o.dir.as_deref() else { usage() };
            let dir = Path::new(dir);
            let cat =
                Catalog::load(dir).unwrap_or_else(|e| fail(format!("cannot load manifest: {e}")));
            match cat.validate(dir) {
                Ok(n) => println!("ok: {n} instances validated"),
                Err(errors) => {
                    for e in &errors {
                        eprintln!("ug-instances: {e}");
                    }
                    std::process::exit(1);
                }
            }
        }
        "info" => {
            let Some(path) = o.positional.as_deref() else { usage() };
            info(Path::new(path));
        }
        "checksum" => {
            let Some(path) = o.positional.as_deref() else { usage() };
            let sum = file_checksum(Path::new(path))
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            println!("{sum}");
        }
        _ => usage(),
    }
}
