//! `ugd-gateway` — the fleet tier: one client endpoint over N
//! `ugd-server` shards.
//!
//! ```text
//! ugd-gateway --shard a=127.0.0.1:7163[:state/a] --shard b=127.0.0.1:7164
//!             [--client-addr 127.0.0.1:7160] [--health-ms 250]
//!             [--shard-liveness-ms 2000] [--steal-margin 2]
//!             [--max-inflight 1024] [--tenant-rate 0] [--tenant-burst 0]
//!             [--tenant-quota <name>=<rate>:<burst>]...
//!             [--state-dir <dir>] [--journal-dir <dir>]
//! ```
//!
//! The gateway speaks the same protocol as a single `ugd-server`, so
//! every `ugd` subcommand works against it unchanged — plus `ugd fleet`
//! for the per-shard view. It routes jobs by weighted rendezvous
//! hashing, steals queued work from deep shards for idle ones, applies
//! per-tenant token-bucket admission control, and on a shard death
//! replays that shard's checkpoints onto surviving peers so in-flight
//! jobs resume as run `1.k` of their restart chain. See README "Fleet
//! operations" and DESIGN §5f.
//!
//! A shard's optional `:state_dir` suffix tells the gateway where that
//! shard checkpoints (same host or shared filesystem); without it, a
//! dead shard's running jobs restart from scratch instead of resuming.

use std::time::Duration;
use ugrs_core::gateway::{GatewayConfig, ShardSpec, TenantQuota};
use ugrs_glue::SolveGateway;

fn parse_shard(arg: &str) -> Result<ShardSpec, String> {
    // name=host:port[:state_dir] or name=[v6]:port[:state_dir]. The
    // address is parsed from the left — a bracketed IPv6 host keeps its
    // internal colons, and everything after the port's ':' is the state
    // dir verbatim (it may itself contain ':').
    let (name, rest) = arg
        .split_once('=')
        .ok_or_else(|| format!("--shard wants name=addr[:state_dir], got {arg:?}"))?;
    if name.is_empty() {
        return Err(format!("--shard name is empty in {arg:?}"));
    }
    let (host, after_host) = if let Some(v6) = rest.strip_prefix('[') {
        let (inner, tail) = v6
            .split_once(']')
            .ok_or_else(|| format!("unclosed '[' in --shard address {rest:?}"))?;
        (format!("[{inner}]"), tail)
    } else {
        let colon = rest
            .find(':')
            .ok_or_else(|| format!("--shard address needs host:port, got {rest:?}"))?;
        (rest[..colon].to_string(), &rest[colon..])
    };
    if host.is_empty() || host == "[]" {
        return Err(format!("--shard host is empty in {arg:?}"));
    }
    let port_and_dir = after_host
        .strip_prefix(':')
        .ok_or_else(|| format!("--shard address needs host:port, got {rest:?}"))?;
    let (port, state_dir) = match port_and_dir.split_once(':') {
        Some((port, dir)) => (port, (!dir.is_empty()).then(|| dir.into())),
        None => (port_and_dir, None),
    };
    port.parse::<u16>().map_err(|_| format!("bad port {port:?} in --shard address {rest:?}"))?;
    Ok(ShardSpec { name: name.into(), addr: format!("{host}:{port}"), state_dir })
}

fn parse_quota(arg: &str) -> Result<(String, TenantQuota), String> {
    let (name, spec) = arg
        .split_once('=')
        .ok_or_else(|| format!("--tenant-quota wants name=rate:burst, got {arg:?}"))?;
    let (rate, burst) = spec
        .split_once(':')
        .ok_or_else(|| format!("--tenant-quota wants name=rate:burst, got {arg:?}"))?;
    let rate: f64 = rate.parse().map_err(|e| format!("bad rate in {arg:?}: {e}"))?;
    let burst: f64 = burst.parse().map_err(|e| format!("bad burst in {arg:?}: {e}"))?;
    Ok((name.into(), TenantQuota { rate, burst }))
}

fn parse_args() -> Result<GatewayConfig, String> {
    let mut config = GatewayConfig { client_addr: "127.0.0.1:7160".into(), ..Default::default() };
    let mut default_rate = 0.0f64;
    let mut default_burst = 0.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--shard" => config.shards.push(parse_shard(&value("--shard")?)?),
            "--client-addr" => config.client_addr = value("--client-addr")?,
            "--health-ms" => {
                config.health_interval = Duration::from_millis(
                    value("--health-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--shard-liveness-ms" => {
                config.shard_liveness = Duration::from_millis(
                    value("--shard-liveness-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--probe-timeout-ms" => {
                config.probe_timeout = Duration::from_millis(
                    value("--probe-timeout-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--steal-margin" => {
                config.steal_margin =
                    value("--steal-margin")?.parse().map_err(|e| format!("{e}"))?
            }
            "--max-inflight" => {
                config.max_inflight =
                    value("--max-inflight")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tenant-rate" => {
                default_rate = value("--tenant-rate")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tenant-burst" => {
                default_burst = value("--tenant-burst")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tenant-quota" => {
                let (name, quota) = parse_quota(&value("--tenant-quota")?)?;
                config.tenant_quotas.insert(name, quota);
            }
            "--state-dir" => config.state_dir = Some(value("--state-dir")?.into()),
            "--journal-dir" => config.journal_dir = Some(value("--journal-dir")?.into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // `--tenant-rate 0` (the default) leaves unlisted tenants
    // unmetered; any positive rate meters them.
    if default_rate > 0.0 {
        let burst = if default_burst > 0.0 { default_burst } else { default_rate.max(1.0) };
        config.default_quota = Some(TenantQuota { rate: default_rate, burst });
    }
    config.validate()?;
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ugd-gateway: {e}");
            eprintln!(
                "usage: ugd-gateway --shard <name>=<host>:<port>[:<state_dir>] [--shard ...]\n\
                 \x20       [--client-addr <a>] [--health-ms <ms>] [--shard-liveness-ms <ms>]\n\
                 \x20       [--probe-timeout-ms <ms>] [--steal-margin <n>] [--max-inflight <n>]\n\
                 \x20       [--tenant-rate <per-sec> [--tenant-burst <n>]]\n\
                 \x20       [--tenant-quota <name>=<rate>:<burst>]...\n\
                 \x20       [--state-dir <dir>] [--journal-dir <dir>]\n\
                 \n\
                 --shard            one ugd-server: client address, plus its state dir when\n\
                 \x20                 reachable (enables checkpoint replay on failover)\n\
                 --steal-margin     steal queued jobs from shards at least this deep (0 = off)\n\
                 --tenant-rate      default token-bucket rate for tenants (0 = unmetered)\n\
                 --tenant-quota     per-tenant override, e.g. batch=0.5:10"
            );
            std::process::exit(2);
        }
    };
    let shards = config.shards.len();
    let gateway = match SolveGateway::start(config) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ugd-gateway: {e}");
            std::process::exit(1);
        }
    };
    println!("ugd-gateway listening on {} ({} shards)", gateway.client_addr(), shards);
    let (total, resumed) = gateway.recovered_jobs();
    if total > 0 {
        println!("ugd-gateway recovered {total} jobs ({resumed} resuming from a checkpoint)");
    }
    gateway.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_shard_accepts_ipv4_ipv6_and_state_dirs() {
        let s = parse_shard("a=127.0.0.1:7163").unwrap();
        assert_eq!((s.name.as_str(), s.addr.as_str()), ("a", "127.0.0.1:7163"));
        assert!(s.state_dir.is_none());

        let s = parse_shard("a=127.0.0.1:7163:/var/lib/ugrs/a").unwrap();
        assert_eq!(s.addr, "127.0.0.1:7163");
        assert_eq!(s.state_dir.as_deref(), Some(std::path::Path::new("/var/lib/ugrs/a")));

        // An IPv6 host keeps its brackets and internal colons.
        let s = parse_shard("v6=[::1]:7163").unwrap();
        assert_eq!(s.addr, "[::1]:7163");
        assert!(s.state_dir.is_none());

        let s = parse_shard("v6=[fe80::1]:7163:/tmp/state").unwrap();
        assert_eq!(s.addr, "[fe80::1]:7163");
        assert_eq!(s.state_dir.as_deref(), Some(std::path::Path::new("/tmp/state")));

        // A state dir may itself contain ':' — only the first ':' after
        // the port delimits it.
        let s = parse_shard("a=10.0.0.2:7000:/mnt/st:age/a").unwrap();
        assert_eq!(s.addr, "10.0.0.2:7000");
        assert_eq!(s.state_dir.as_deref(), Some(std::path::Path::new("/mnt/st:age/a")));
    }

    #[test]
    fn parse_shard_rejects_malformed_input() {
        assert!(parse_shard("no-equals").is_err(), "missing name=");
        assert!(parse_shard("=127.0.0.1:7163").is_err(), "empty name");
        assert!(parse_shard("a=127.0.0.1").is_err(), "missing port");
        assert!(parse_shard("a=:7163").is_err(), "empty host");
        assert!(parse_shard("a=[::1:7163").is_err(), "unclosed bracket");
        assert!(parse_shard("a=[::1]7163").is_err(), "missing ':' after ']'");
        assert!(parse_shard("a=127.0.0.1:notaport").is_err(), "non-numeric port");
        assert!(parse_shard("a=127.0.0.1:99999").is_err(), "port out of range");
    }
}
