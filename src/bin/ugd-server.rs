//! `ugd-server` — a persistent solve-job service over a shared worker
//! pool.
//!
//! Where `ug [*, ProcessComm]` spawns workers per call, this daemon
//! keeps a standing pool of `ugd-worker --serve` processes and runs a
//! queue of mixed STP/MISDP jobs over them, each job under its own
//! `LoadCoordinator`, with priorities, per-job limits, cancellation and
//! streaming progress for `ugd` clients:
//!
//! ```text
//! ugd-server [--client-addr 127.0.0.1:7163] [--worker-addr 127.0.0.1:0]
//!            [--pool-size 4] [--max-jobs 2] [--worker <path>]
//!            [--status-interval 0.05] [--handicap-ms 0]
//!            [--journal-dir <dir>] [--state-dir <dir>]
//!            [--checkpoint-interval 1.0]
//! ```
//!
//! With `--journal-dir`, every job writes a JSONL run journal
//! (`job-<id>-<name>.jsonl`) of timestamped telemetry events there —
//! replayable for gap-over-time plots and post-mortems.
//!
//! With `--state-dir`, the server is **crash-safe**: every accepted job
//! is write-ahead-logged to `<dir>/jobs/` before the submission is
//! acknowledged, running jobs checkpoint their coordinator state to
//! `<dir>/checkpoints/` every `--checkpoint-interval` seconds (default
//! 1.0), and on startup a recovery pass requeues every unfinished job —
//! resuming interrupted ones from their latest checkpoint as run `1.k`
//! of a restart chain. See README "Operations" for the full runbook.
//!
//! `--worker` defaults to the `ugd-worker` binary next to this
//! executable. The process runs until a client sends `shutdown` — or
//! until **SIGTERM**, which drains instead of killing: submits are
//! answered `Rejected { reason: "draining" }`, running jobs are stopped
//! through the cancel path (their coordinators write final checkpoints),
//! the ledger records of unfinished jobs are *kept*, and the process
//! exits 0 — so the next `ugd-server --state-dir <same>` resumes every
//! interrupted job as run `1.k`. This is what lets an operator (or an
//! orchestrator's rolling restart) recycle a shard without losing work.

use std::sync::atomic::{AtomicBool, Ordering};
use ugrs_core::chaos::{ChaosConfig, ChaosProfile};
use ugrs_core::ServerConfig;
use ugrs_glue::SolveServer;

/// Set by the SIGTERM handler; polled by the main loop. A signal
/// handler may only do async-signal-safe work, and a relaxed store to a
/// static atomic is exactly that.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM_RECEIVED.store(true, Ordering::Relaxed);
}

/// Installs the SIGTERM handler via the C `signal()` entry point that
/// libc (already linked by std) exports — no new dependency.
fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: *const ()) -> *const ();
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_sigterm as *const ());
        }
    }
}

struct Args {
    config: ServerConfig,
    handicap_ms: u64,
    worker: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServerConfig { client_addr: "127.0.0.1:7163".into(), ..Default::default() };
    let mut handicap_ms = 0u64;
    let mut worker = None;
    let mut chaos_seed = None;
    let mut chaos_profile = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--client-addr" => config.client_addr = value("--client-addr")?,
            "--worker-addr" => config.worker_addr = value("--worker-addr")?,
            "--pool-size" => {
                config.pool_size = value("--pool-size")?.parse().map_err(|e| format!("{e}"))?
            }
            "--max-jobs" => {
                config.max_concurrent_jobs =
                    value("--max-jobs")?.parse().map_err(|e| format!("{e}"))?
            }
            "--status-interval" => {
                config.status_interval =
                    value("--status-interval")?.parse().map_err(|e| format!("{e}"))?
            }
            "--handicap-ms" => {
                handicap_ms = value("--handicap-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--journal-dir" => {
                config.journal_dir = Some(value("--journal-dir")?.into());
            }
            "--state-dir" => {
                config.state_dir = Some(value("--state-dir")?.into());
            }
            "--checkpoint-interval" => {
                config.checkpoint_interval =
                    value("--checkpoint-interval")?.parse().map_err(|e| format!("{e}"))?
            }
            "--worker" => worker = Some(value("--worker")?),
            "--heartbeat-ms" => {
                config.comm.heartbeat_interval = std::time::Duration::from_millis(
                    value("--heartbeat-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--liveness-ms" => {
                config.comm.liveness_timeout = std::time::Duration::from_millis(
                    value("--liveness-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--reconnect-ms" => {
                config.comm.reconnect_deadline = std::time::Duration::from_millis(
                    value("--reconnect-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--chaos-seed" => {
                chaos_seed =
                    Some(value("--chaos-seed")?.parse::<u64>().map_err(|e| format!("{e}"))?)
            }
            "--chaos-profile" => {
                // Parse here so a typo fails at startup, not in a
                // worker spawned minutes later.
                chaos_profile = Some(ChaosProfile::parse(&value("--chaos-profile")?)?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if chaos_profile.is_some() && chaos_seed.is_none() {
        return Err("--chaos-profile needs --chaos-seed".into());
    }
    if let Some(seed) = chaos_seed {
        // The scheduler hands each pool worker a per-worker variant of
        // this plan (seed + worker id): still fully deterministic, but
        // de-correlated — a shared seed would synchronize every
        // worker's schedule and tear all of a job's leases at once.
        config.comm.chaos =
            Some(ChaosConfig::new(seed, chaos_profile.unwrap_or_else(ChaosProfile::none)));
    }
    config.comm.validate()?;
    Ok(Args { config, handicap_ms, worker })
}

/// The `ugd-worker` binary: explicit flag, or the sibling of this
/// executable (the cargo layout puts both in the same target dir).
fn worker_binary(explicit: Option<String>) -> Result<String, String> {
    if let Some(w) = explicit {
        return Ok(w);
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate self: {e}"))?;
    let sibling = exe.with_file_name("ugd-worker");
    if sibling.exists() {
        Ok(sibling.display().to_string())
    } else {
        Err(format!("no ugd-worker next to {} — pass --worker <path>", exe.display()))
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ugd-server: {e}");
            eprintln!(
                "usage: ugd-server [--client-addr <a>] [--worker-addr <a>] [--pool-size <n>]\n\
                 \x20       [--max-jobs <n>] [--worker <path>] [--status-interval <secs>]\n\
                 \x20       [--handicap-ms <ms>] [--journal-dir <dir>]\n\
                 \x20       [--state-dir <dir>] [--checkpoint-interval <secs>]\n\
                 \x20       [--heartbeat-ms <ms>] [--liveness-ms <ms>] [--reconnect-ms <ms>]\n\
                 \x20       [--chaos-seed <n> [--chaos-profile <name|json>]]\n\
                 \n\
                 --state-dir <dir>            durable job ledger + checkpoints; on restart,\n\
                 \x20                            unfinished jobs are requeued/resumed from here\n\
                 --checkpoint-interval <secs> how often running jobs checkpoint (default 1.0)"
            );
            std::process::exit(2);
        }
    };
    let mut config = args.config;
    match worker_binary(args.worker) {
        Ok(w) => {
            config.worker_command = vec![w];
            if args.handicap_ms > 0 {
                config
                    .worker_command
                    .extend(["--handicap-ms".into(), args.handicap_ms.to_string()]);
            }
        }
        Err(e) => {
            eprintln!("ugd-server: {e}");
            std::process::exit(2);
        }
    }
    let state_dir = config.state_dir.clone();
    let server = match SolveServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ugd-server: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "ugd-server listening on {} (workers: {})",
        server.client_addr(),
        server.worker_addr()
    );
    let (total, resumed) = server.recovered_jobs();
    if let (Some(dir), true) = (state_dir, total > 0) {
        println!(
            "recovered {total} job(s) from {} ({resumed} resumed from checkpoint)",
            dir.display()
        );
    }
    install_sigterm_handler();
    // Poll instead of blocking in join(): the SIGTERM flag must be able
    // to interrupt the wait. 50 ms is invisible next to job runtimes.
    while !server.shutdown_requested() && !SIGTERM_RECEIVED.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    if SIGTERM_RECEIVED.load(Ordering::Relaxed) && !server.shutdown_requested() {
        println!("ugd-server: SIGTERM — draining (checkpointing running jobs, keeping ledger)");
        server.drain_and_join();
        println!("ugd-server: drained");
    } else {
        server.join();
    }
}
