//! `ugd` — the command-line client of `ugd-server` and `ugd-gateway`.
//!
//! ```text
//! ugd submit <file.stp|file.cbf|file.mc> [--addr 127.0.0.1:7163] [--name <s>]
//!            [--priority <p>] [--solvers <n>] [--time-limit <secs>]
//!            [--node-limit <n>] [--tenant <key>] [--no-watch]
//! ugd watch <job>   [--addr <a>] [--from <seq>]
//! ugd cancel <job>  [--addr <a>]
//! ugd status        [--addr <a>]
//! ugd top           [--addr <a>] [--interval <secs>] [--iterations <n>]
//! ugd metrics       [--addr <a>]
//! ugd fleet         [--addr <a>]
//! ugd shutdown      [--addr <a>]
//! ```
//!
//! `submit` detects the application by extension: `.stp` (SteinLib) is
//! reduced client-side and submitted as a Steiner job, `.cbf` as a
//! MISDP job, `.mc` (max-cut edge list) as a max-cut job solved via its
//! MISDP formulation. `--file <path>` names the instance explicitly
//! (equivalent to the positional operand); either way the FNV-1a 64
//! checksum of the file's bytes rides in the spec, so the job's ledger
//! record and telemetry journal pin exactly which instance ran. By
//! default it then watches the job to completion and
//! prints the objective in the instance's external sense (STP: reduced
//! plus fixed cost; MISDP: maximized `bᵀy`). Watching is resumable: on
//! a dropped connection, re-run `ugd watch <job> --from <seq>`.
//!
//! Every subcommand also works against a `ugd-gateway` — same wire
//! protocol; `--gateway <a>` is an alias of `--addr <a>` that makes the
//! intent explicit in scripts. Gateway-specific: `--tenant` tags a
//! submission for admission control (over-quota submissions are
//! refused with "rejected: quota", exit 5), and `ugd fleet` shows the
//! per-shard view — queue depth, busy workers, steal/failover/reject
//! counters.

use ugrs_core::telemetry::sample_sum;
use ugrs_core::{JobEvent, JobEventKind, JobState, SubmitOutcome};
use ugrs_glue::{maxcut_job, misdp_job, stp_job, SolveClient, SolveJobSpec};
use ugrs_steiner::reduce::ReduceParams;

const DEFAULT_ADDR: &str = "127.0.0.1:7163";

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ugd: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: ugd submit [--file] <file.stp|file.cbf|file.mc> [--addr <a>] [--name <s>]\n\
         \x20                [--priority <p>] [--solvers <n>] [--time-limit <secs>]\n\
         \x20                [--node-limit <n>] [--tenant <key>] [--no-watch]\n\
         \x20      ugd watch <job> [--addr <a>] [--from <seq>]\n\
         \x20      ugd cancel <job> [--addr <a>]\n\
         \x20      ugd status [--addr <a>]\n\
         \x20      ugd top [--addr <a>] [--interval <secs>] [--iterations <n>]\n\
         \x20      ugd metrics [--addr <a>]\n\
         \x20      ugd fleet [--addr <a>]\n\
         \x20      ugd shutdown [--addr <a>]\n\
         (--gateway <a> is an alias of --addr <a>; fleet/--tenant need a gateway)"
    );
    std::process::exit(2);
}

/// Flags shared by every subcommand, plus the positional operand.
struct Opts {
    addr: String,
    positional: Option<String>,
    file: Option<String>,
    name: Option<String>,
    priority: i32,
    solvers: usize,
    time_limit: f64,
    node_limit: Option<u64>,
    from_seq: usize,
    watch: bool,
    interval: f64,
    iterations: Option<u64>,
    tenant: Option<String>,
}

fn parse_opts(mut it: std::env::Args) -> Result<Opts, String> {
    let mut o = Opts {
        addr: DEFAULT_ADDR.into(),
        positional: None,
        file: None,
        name: None,
        priority: 0,
        solvers: 2,
        time_limit: f64::INFINITY,
        node_limit: None,
        from_seq: 0,
        watch: true,
        interval: 1.0,
        iterations: None,
        tenant: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => o.addr = value("--addr")?,
            "--file" => o.file = Some(value("--file")?),
            // The gateway speaks the server protocol, so addressing one
            // is just an address — the alias only documents intent.
            "--gateway" => o.addr = value("--gateway")?,
            "--tenant" => o.tenant = Some(value("--tenant")?),
            "--name" => o.name = Some(value("--name")?),
            "--priority" => {
                o.priority = value("--priority")?.parse().map_err(|e| format!("{e}"))?
            }
            "--solvers" => o.solvers = value("--solvers")?.parse().map_err(|e| format!("{e}"))?,
            "--time-limit" => {
                o.time_limit = value("--time-limit")?.parse().map_err(|e| format!("{e}"))?
            }
            "--node-limit" => {
                o.node_limit = Some(value("--node-limit")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--from" => o.from_seq = value("--from")?.parse().map_err(|e| format!("{e}"))?,
            "--interval" => {
                o.interval = value("--interval")?.parse().map_err(|e| format!("{e}"))?
            }
            "--iterations" => {
                o.iterations = Some(value("--iterations")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--no-watch" => o.watch = false,
            other if !other.starts_with('-') && o.positional.is_none() => {
                o.positional = Some(other.to_string())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

fn connect(addr: &str) -> SolveClient {
    SolveClient::connect(addr).unwrap_or_else(|e| fail(format!("cannot reach server {addr}: {e}")))
}

/// Builds the spec from the instance file; returns it with the
/// external-objective mapper for progress printing.
fn load_spec(path: &str, o: &Opts) -> SolveJobSpec {
    let p = std::path::Path::new(path);
    let name = o.name.clone().unwrap_or_else(|| {
        p.file_stem().map_or_else(|| path.to_string(), |s| s.to_string_lossy().into_owned())
    });
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let mut spec = match ext {
        "stp" => {
            let graph = ugrs_steiner::stp::read_stp(p)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            stp_job(name, &graph, &ReduceParams::default())
        }
        "cbf" => {
            let problem = ugrs_misdp::cbf::read_cbf(p)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            misdp_job(name, &problem)
        }
        "mc" => {
            let instance = ugrs_instances::maxcut::read_mc(p)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            maxcut_job(name, &instance)
        }
        _ => fail(format!("unknown instance type {path:?} (expected .stp, .cbf or .mc)")),
    };
    // Pin the exact bytes submitted: the checksum lands in the job's
    // WALed ledger record and the head of its telemetry journal.
    spec.checksum = Some(
        ugrs_instances::file_checksum(p)
            .unwrap_or_else(|e| fail(format!("cannot checksum {path}: {e}"))),
    );
    spec.priority = o.priority;
    spec.num_solvers = o.solvers;
    spec.time_limit = o.time_limit;
    spec.node_limit = o.node_limit;
    spec.tenant = o.tenant.clone();
    spec
}

/// Prints one event; `external` maps internal-sense objectives when the
/// client knows the instance (submit path), otherwise identity.
fn print_event(ev: &JobEvent<Vec<f64>>, external: &dyn Fn(f64) -> f64) {
    match &ev.kind {
        JobEventKind::Queued => println!("job {} queued", ev.job),
        JobEventKind::Started { workers } => {
            println!("job {} started on {workers} workers", ev.job)
        }
        JobEventKind::Incumbent { obj } => {
            println!("job {} incumbent {:.6}", ev.job, external(*obj))
        }
        JobEventKind::Bound { dual_bound } => {
            println!("job {} bound {:.6}", ev.job, external(*dual_bound))
        }
        JobEventKind::WorkerLost { rank } => {
            println!("job {} lost worker rank {rank} (requeued)", ev.job)
        }
        JobEventKind::Routed { shard } => {
            println!("job {} routed to shard {shard}", ev.job)
        }
        JobEventKind::Recovered { run_index, nodes_so_far } => {
            println!(
                "job {} recovered from server restart (next run 1.{run_index}, \
                 {nodes_so_far} nodes done in earlier runs)",
                ev.job
            )
        }
        JobEventKind::Finished {
            state, obj, nodes, workers_lost, wall_time, run_index, ..
        } => {
            let obj = obj.map_or("-".to_string(), |o| format!("{:.6}", external(o)));
            let chain = if *run_index > 1 { format!(" run=1.{run_index}") } else { String::new() };
            println!(
                "job {} finished: {state:?} obj={obj} nodes={nodes} \
                 workers_lost={workers_lost} wall={wall_time:.2}s{chain}",
                ev.job
            );
        }
    }
}

fn fmt_bound(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "-".to_string()
    }
}

/// `ugd top`: live per-job dashboard over the `Metrics` request. Redraws
/// every `interval` seconds; `iterations` bounds the loop for
/// non-interactive use (tests, CI smoke).
fn run_top(client: &mut SolveClient, interval: f64, iterations: Option<u64>) {
    let mut prev: Option<(std::time::Instant, f64, f64, f64)> = None;
    let mut iter = 0u64;
    loop {
        let report = client.metrics().unwrap_or_else(|e| fail(e));
        let now = std::time::Instant::now();
        let finished = sample_sum(&report.text, "ugrs_server_jobs_finished_total");
        let tx = sample_sum(&report.text, "ugrs_wire_tx_bytes_total");
        let rx = sample_sum(&report.text, "ugrs_wire_rx_bytes_total");
        let rates = prev.map(|(t0, f0, tx0, rx0)| {
            let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
            ((finished - f0) / dt, (tx - tx0) / dt, (rx - rx0) / dt)
        });
        prev = Some((now, finished, tx, rx));

        // Clear screen + home, like top(1); harmless when piped.
        print!("\x1b[2J\x1b[H");
        println!(
            "ugd top — pool {}/{} workers ({} busy), {} running, {} queued, {} finished",
            sample_sum(&report.text, "ugrs_server_pool_workers"),
            sample_sum(&report.text, "ugrs_server_pool_target"),
            sample_sum(&report.text, "ugrs_server_workers_busy"),
            sample_sum(&report.text, "ugrs_server_jobs_running"),
            sample_sum(&report.text, "ugrs_server_queue_depth"),
            finished,
        );
        match rates {
            Some((jps, txps, rxps)) => println!(
                "jobs/s {jps:.2}   wire tx {:.1} KiB/s rx {:.1} KiB/s",
                txps / 1024.0,
                rxps / 1024.0
            ),
            None => println!("jobs/s -   wire tx - rx -"),
        }
        println!(
            "{:>5} {:<20} {:<9} {:>10} {:>8} {:>8} {:>6} {:>9} {:>10} {:>6}",
            "JOB", "NAME", "STATE", "GAP%", "OPEN", "NODES", "ACT", "IDLE%", "DUAL", "DIED"
        );
        for j in &report.jobs {
            let mut name = j.name.clone();
            name.truncate(20);
            match &j.progress {
                Some(p) => println!(
                    "{:>5} {:<20} {:<9} {:>10} {:>8} {:>8} {:>6} {:>9.1} {:>10} {:>6}",
                    j.job,
                    name,
                    format!("{:?}", j.state),
                    if p.gap_percent.is_finite() {
                        format!("{:.3}", p.gap_percent)
                    } else {
                        "inf".to_string()
                    },
                    p.open_nodes,
                    p.nodes,
                    p.active,
                    p.idle_percent,
                    fmt_bound(p.dual_bound),
                    p.workers_died,
                ),
                None => println!(
                    "{:>5} {:<20} {:<9} {:>10} {:>8} {:>8} {:>6} {:>9} {:>10} {:>6}",
                    j.job,
                    name,
                    format!("{:?}", j.state),
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                ),
            }
        }
        iter += 1;
        if iterations.is_some_and(|n| iter >= n) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval.max(0.05)));
    }
}

fn exit_code(state: JobState) -> i32 {
    match state {
        JobState::Solved | JobState::Infeasible => 0,
        JobState::TimedOut => 3,
        JobState::Cancelled => 4,
        _ => 1,
    }
}

fn main() {
    let mut argv = std::env::args();
    argv.next();
    let Some(cmd) = argv.next() else { usage() };
    let o = parse_opts(argv).unwrap_or_else(|e| {
        eprintln!("ugd: {e}");
        usage()
    });
    match cmd.as_str() {
        "submit" => {
            let Some(path) = o.positional.clone().or_else(|| o.file.clone()) else { usage() };
            let spec = load_spec(&path, &o);
            let instance = spec.instance.clone();
            let external = move |v: f64| instance.external_objective(v);
            let mut client = connect(&o.addr);
            let job = match client.try_submit(spec).unwrap_or_else(|e| fail(e)) {
                SubmitOutcome::Accepted(job) => job,
                SubmitOutcome::Rejected(reason) => {
                    // Admission control said no: nothing was queued, so
                    // a distinct exit code lets scripts back off.
                    eprintln!("ugd: rejected: {reason}");
                    std::process::exit(5);
                }
            };
            println!("submitted job {job}");
            if o.watch {
                let done = client
                    .watch(job, 0, |ev| print_event(ev, &external))
                    .unwrap_or_else(|e| fail(e));
                if let JobEventKind::Finished { state, .. } = done.kind {
                    std::process::exit(exit_code(state));
                }
            }
        }
        "watch" => {
            let job = o
                .positional
                .as_deref()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            let mut client = connect(&o.addr);
            let done = client
                .watch(job, o.from_seq, |ev| print_event(ev, &|v| v))
                .unwrap_or_else(|e| fail(e));
            if let JobEventKind::Finished { state, .. } = done.kind {
                std::process::exit(exit_code(state));
            }
        }
        "cancel" => {
            let job = o
                .positional
                .as_deref()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            let mut client = connect(&o.addr);
            match client.cancel(job).unwrap_or_else(|e| fail(e)) {
                true => println!("job {job} cancelled"),
                false => {
                    println!("job {job} not cancellable (already finished or unknown)");
                    std::process::exit(1);
                }
            }
        }
        "status" => {
            let mut client = connect(&o.addr);
            let st = client.status().unwrap_or_else(|e| fail(e));
            println!("pool {}/{} workers:", st.workers.len(), st.pool_target);
            for w in &st.workers {
                let pid = w.pid.map_or("-".to_string(), |p| p.to_string());
                let lease = match (w.job, w.rank) {
                    (Some(j), Some(r)) => format!("job {j} rank {r}"),
                    _ if w.draining => "draining".to_string(),
                    _ => "idle".to_string(),
                };
                println!("  worker {} pid {pid}: {lease}", w.id);
            }
            println!("queued: {:?}", st.queued);
            for j in &st.jobs {
                let open = j.open_nodes.map_or(String::new(), |n| format!(" open {n}"));
                // Jobs resumed after a server crash show their restart
                // chain index, Table 2 style: `run 1.2` is the second
                // run of job 1's chain.
                let run =
                    if j.run_index > 1 { format!(" run 1.{}", j.run_index) } else { String::new() };
                println!(
                    "  job {} {:?}{run} prio {} solvers {}{open} — {}",
                    j.job, j.state, j.priority, j.num_solvers, j.name
                );
            }
        }
        "top" => {
            let mut client = connect(&o.addr);
            run_top(&mut client, o.interval, o.iterations);
        }
        "metrics" => {
            let mut client = connect(&o.addr);
            let report = client.metrics().unwrap_or_else(|e| fail(e));
            print!("{}", report.text);
        }
        "fleet" => {
            let mut client = connect(&o.addr);
            let fleet = client.fleet().unwrap_or_else(|e| fail(e));
            println!(
                "fleet: {} shard(s), {} in flight, {} awaiting dispatch",
                fleet.shards.len(),
                fleet.inflight,
                fleet.dispatch_depth,
            );
            println!(
                "{:<12} {:<21} {:<9} {:>6} {:>6} {:>6} {:>8} {:>10}",
                "SHARD", "ADDR", "HEALTH", "QUEUE", "BUSY", "POOL", "RUNNING", "HEARD(ms)"
            );
            for s in &fleet.shards {
                println!(
                    "{:<12} {:<21} {:<9} {:>6} {:>6} {:>6} {:>8} {:>10}",
                    s.name,
                    s.addr,
                    if s.healthy { "ok" } else { "DEAD" },
                    s.queue_depth,
                    s.workers_busy,
                    s.pool_workers,
                    s.jobs_running,
                    s.last_heard_ms,
                );
            }
            if !fleet.families.is_empty() {
                let families: Vec<String> =
                    fleet.families.iter().map(|(f, n)| format!("{f}={n}")).collect();
                println!("families: {}", families.join(" "));
            }
            println!(
                "stolen {}  failed_over {}  rejected {}",
                fleet.stolen_total, fleet.failed_over_total, fleet.rejected_total
            );
        }
        "shutdown" => {
            let mut client = connect(&o.addr);
            client.shutdown_server().unwrap_or_else(|e| fail(e));
            println!("server shutting down");
        }
        _ => usage(),
    }
}
