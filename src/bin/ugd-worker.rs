//! `ugd-worker` — the worker-process half of `ug [SCIP-*, ProcessComm]`.
//!
//! Two modes share this binary:
//!
//! **Per-call mode** (the original ParaSCIP shape): a coordinator such as
//! [`ugrs_glue::apps::stp::ug_solve_stp_distributed`] spawns one worker
//! per rank for a single solve. Each connects back over TCP, handshakes
//! for its rank, loads the reduced instance the coordinator wrote, and
//! serves subproblems until `Terminate`:
//!
//! ```text
//! ugd-worker --connect 127.0.0.1:40123 --rank 2 \
//!            --instance /tmp/ugrs-stp-1234-abc.json \
//!            [--status-interval 0.05] [--handicap-ms 0]
//! ```
//!
//! **Pool mode** (`--serve`): the worker joins a `ugd-server` pool and
//! stays alive across jobs. It receives each job's instance over the
//! wire with the job's `Begin` frame — no instance file — and serves
//! mixed STP/MISDP jobs until the server hangs up:
//!
//! ```text
//! ugd-worker --serve --connect 127.0.0.1:40123 [--pool-tag 7]
//! ```
//!
//! `--handicap-ms` delays every subproblem solve by the given amount —
//! a test/benchmark knob that makes worker-death scenarios reproducible
//! (a handicapped worker is reliably mid-subproblem when killed).
//! `--heartbeat-ms` / `--handshake-ms` tune the transport to match the
//! coordinator's [`ProcessCommConfig`] instead of assuming defaults.

use std::time::Duration;
use ugrs_core::{run_distributed_worker, ProcessCommConfig};
use ugrs_glue::apps::stp::stp_worker_factory;
use ugrs_glue::DelaySolver;

struct Args {
    serve: bool,
    connect: String,
    rank: Option<usize>,
    pool_tag: Option<u64>,
    instance: Option<std::path::PathBuf>,
    status_interval: f64,
    handicap: Duration,
    comm: ProcessCommConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut serve = false;
    let mut connect = None;
    let mut rank = None;
    let mut pool_tag = None;
    let mut instance = None;
    let mut status_interval = 0.05f64;
    let mut handicap = Duration::ZERO;
    let mut comm = ProcessCommConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--serve" => serve = true,
            "--connect" => connect = Some(value("--connect")?),
            "--rank" => rank = Some(value("--rank")?.parse::<usize>().map_err(|e| e.to_string())?),
            "--pool-tag" => {
                pool_tag = Some(value("--pool-tag")?.parse::<u64>().map_err(|e| e.to_string())?)
            }
            "--instance" => instance = Some(std::path::PathBuf::from(value("--instance")?)),
            "--status-interval" => {
                status_interval =
                    value("--status-interval")?.parse::<f64>().map_err(|e| e.to_string())?
            }
            "--handicap-ms" => {
                handicap = Duration::from_millis(
                    value("--handicap-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            "--heartbeat-ms" => {
                comm.heartbeat_interval = Duration::from_millis(
                    value("--heartbeat-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            "--handshake-ms" => {
                comm.handshake_timeout = Duration::from_millis(
                    value("--handshake-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let connect = connect.ok_or("--connect is required")?;
    if !serve && instance.is_none() {
        return Err("--instance is required (unless --serve)".into());
    }
    Ok(Args { serve, connect, rank, pool_tag, instance, status_interval, handicap, comm })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ugd-worker: {e}");
            eprintln!(
                "usage: ugd-worker --connect <addr> --instance <path> [--rank <n>]\n\
                 \x20      ugd-worker --serve --connect <addr> [--pool-tag <t>]\n\
                 common: [--status-interval <secs>] [--handicap-ms <ms>]\n\
                 \x20       [--heartbeat-ms <ms>] [--handshake-ms <ms>]"
            );
            std::process::exit(2);
        }
    };
    let status_interval = Duration::from_secs_f64(args.status_interval);
    if args.serve {
        if let Err(e) = ugrs_glue::serve_jobs(
            &args.connect,
            args.pool_tag,
            args.handicap,
            status_interval,
            &args.comm,
        ) {
            eprintln!("ugd-worker: {e}");
            std::process::exit(1);
        }
        return;
    }
    let instance = args.instance.expect("checked in parse_args");
    let inner_factory = match stp_worker_factory(&instance) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ugd-worker: cannot load instance {}: {e}", instance.display());
            std::process::exit(2);
        }
    };
    let delay = args.handicap;
    let factory: ugrs_core::worker::SolverFactory<DelaySolver<_>> =
        std::sync::Arc::new(move |rank, settings| DelaySolver {
            inner: inner_factory(rank, settings),
            delay,
        });
    if let Err(e) =
        run_distributed_worker(&args.connect, args.rank, factory, status_interval, &args.comm)
    {
        eprintln!("ugd-worker: {e}");
        std::process::exit(1);
    }
}
