//! `ugd-worker` — the worker-process half of `ug [SCIP-*, ProcessComm]`.
//!
//! Two modes share this binary:
//!
//! **Per-call mode** (the original ParaSCIP shape): a coordinator such as
//! [`ugrs_glue::apps::stp::ug_solve_stp_distributed`] spawns one worker
//! per rank for a single solve. Each connects back over TCP, handshakes
//! for its rank, loads the reduced instance the coordinator wrote, and
//! serves subproblems until `Terminate`:
//!
//! ```text
//! ugd-worker --connect 127.0.0.1:40123 --rank 2 \
//!            --instance /tmp/ugrs-stp-1234-abc.json \
//!            [--status-interval 0.05] [--handicap-ms 0]
//! ```
//!
//! **Pool mode** (`--serve`): the worker joins a `ugd-server` pool and
//! stays alive across jobs. It receives each job's instance over the
//! wire with the job's `Begin` frame — no instance file — and serves
//! mixed STP/MISDP jobs until the server hangs up:
//!
//! ```text
//! ugd-worker --serve --connect 127.0.0.1:40123 [--pool-tag 7]
//! ```
//!
//! Per-call mode also accepts `--instance-job <path>`: the file holds a
//! serialized [`ugrs_glue::JobInstance`] (STP *or* MISDP) instead of a
//! raw Steiner graph, which is how
//! [`ugrs_glue::apps::misdp::ug_solve_misdp_distributed`] ships MISDPs
//! to per-call workers.
//!
//! `--handicap-ms` delays every subproblem solve by the given amount —
//! a test/benchmark knob that makes worker-death scenarios reproducible
//! (a handicapped worker is reliably mid-subproblem when killed).
//! `--heartbeat-ms` / `--handshake-ms` / `--liveness-ms` /
//! `--reconnect-ms` tune the transport to match the coordinator's
//! [`ProcessCommConfig`] instead of assuming defaults.
//!
//! The hidden `--chaos-seed <n>` / `--chaos-profile <name|json>` pair
//! arms deterministic fault injection on the worker's outgoing frames
//! (see [`ugrs_core::chaos`]); it exists for the chaos test suite and
//! for reproducing a failing seed from a CI log.

use std::time::Duration;
use ugrs_core::chaos::{ChaosConfig, ChaosProfile};
use ugrs_core::{run_distributed_worker, ProcessCommConfig};
use ugrs_glue::apps::stp::stp_worker_factory;
use ugrs_glue::{job_factory, DelaySolver, JobInstance};

struct Args {
    serve: bool,
    connect: String,
    rank: Option<usize>,
    pool_tag: Option<u64>,
    instance: Option<std::path::PathBuf>,
    instance_job: Option<std::path::PathBuf>,
    status_interval: f64,
    handicap: Duration,
    comm: ProcessCommConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut serve = false;
    let mut connect = None;
    let mut rank = None;
    let mut pool_tag = None;
    let mut instance = None;
    let mut instance_job = None;
    let mut status_interval = 0.05f64;
    let mut handicap = Duration::ZERO;
    let mut comm = ProcessCommConfig::default();
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_profile: Option<ChaosProfile> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--serve" => serve = true,
            "--connect" => connect = Some(value("--connect")?),
            "--rank" => rank = Some(value("--rank")?.parse::<usize>().map_err(|e| e.to_string())?),
            "--pool-tag" => {
                pool_tag = Some(value("--pool-tag")?.parse::<u64>().map_err(|e| e.to_string())?)
            }
            "--instance" => instance = Some(std::path::PathBuf::from(value("--instance")?)),
            "--instance-job" => {
                instance_job = Some(std::path::PathBuf::from(value("--instance-job")?))
            }
            "--status-interval" => {
                status_interval =
                    value("--status-interval")?.parse::<f64>().map_err(|e| e.to_string())?
            }
            "--handicap-ms" => {
                handicap = Duration::from_millis(
                    value("--handicap-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            "--heartbeat-ms" => {
                comm.heartbeat_interval = Duration::from_millis(
                    value("--heartbeat-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            "--handshake-ms" => {
                comm.handshake_timeout = Duration::from_millis(
                    value("--handshake-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            "--liveness-ms" => {
                comm.liveness_timeout = Duration::from_millis(
                    value("--liveness-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            "--reconnect-ms" => {
                comm.reconnect_deadline = Duration::from_millis(
                    value("--reconnect-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            "--chaos-seed" => {
                chaos_seed = Some(value("--chaos-seed")?.parse::<u64>().map_err(|e| e.to_string())?)
            }
            "--chaos-profile" => {
                chaos_profile = Some(ChaosProfile::parse(&value("--chaos-profile")?)?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let connect = connect.ok_or("--connect is required")?;
    if !serve && instance.is_none() && instance_job.is_none() {
        return Err("--instance or --instance-job is required (unless --serve)".into());
    }
    if let Some(seed) = chaos_seed {
        comm.chaos = Some(ChaosConfig::new(seed, chaos_profile.unwrap_or_else(ChaosProfile::none)));
    } else if chaos_profile.is_some() {
        return Err("--chaos-profile needs --chaos-seed".into());
    }
    comm.validate()?;
    Ok(Args {
        serve,
        connect,
        rank,
        pool_tag,
        instance,
        instance_job,
        status_interval,
        handicap,
        comm,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ugd-worker: {e}");
            eprintln!(
                "usage: ugd-worker --connect <addr> (--instance <path> | --instance-job <path>) [--rank <n>]\n\
                 \x20      ugd-worker --serve --connect <addr> [--pool-tag <t>]\n\
                 common: [--status-interval <secs>] [--handicap-ms <ms>]\n\
                 \x20       [--heartbeat-ms <ms>] [--handshake-ms <ms>] [--liveness-ms <ms>] [--reconnect-ms <ms>]\n\
                 \x20       [--chaos-seed <n> [--chaos-profile <name|json>]]"
            );
            std::process::exit(2);
        }
    };
    let status_interval = Duration::from_secs_f64(args.status_interval);
    if args.serve {
        if let Err(e) = ugrs_glue::serve_jobs(
            &args.connect,
            args.pool_tag,
            args.handicap,
            status_interval,
            &args.comm,
        ) {
            eprintln!("ugd-worker: {e}");
            std::process::exit(1);
        }
        return;
    }
    let delay = args.handicap;
    let result = if let Some(path) = args.instance_job {
        // A serialized JobInstance: STP or MISDP, same file format the
        // job service ships over the wire.
        let inner_factory = match std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|raw| {
                serde_json::from_slice::<JobInstance>(&raw).map_err(|e| format!("{e:?}"))
            })
            .map(|inst| job_factory(&inst))
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("ugd-worker: cannot load job instance {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let factory: ugrs_core::worker::SolverFactory<DelaySolver<_>> =
            std::sync::Arc::new(move |rank, settings| DelaySolver {
                inner: inner_factory(rank, settings),
                delay,
            });
        run_distributed_worker(&args.connect, args.rank, factory, status_interval, &args.comm)
    } else {
        let instance = args.instance.expect("checked in parse_args");
        let inner_factory = match stp_worker_factory(&instance) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("ugd-worker: cannot load instance {}: {e}", instance.display());
                std::process::exit(2);
            }
        };
        let factory: ugrs_core::worker::SolverFactory<DelaySolver<_>> =
            std::sync::Arc::new(move |rank, settings| DelaySolver {
                inner: inner_factory(rank, settings),
                delay,
            });
        run_distributed_worker(&args.connect, args.rank, factory, status_interval, &args.comm)
    };
    if let Err(e) = result {
        eprintln!("ugd-worker: {e}");
        std::process::exit(1);
    }
}
