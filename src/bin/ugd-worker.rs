//! `ugd-worker` — the worker-process half of `ug [SteinerJack,
//! ProcessComm]`.
//!
//! The coordinator (e.g. [`ugrs_glue::apps::stp::ug_solve_stp_distributed`])
//! spawns one of these per rank. Each connects back over TCP, handshakes
//! for its rank, loads the reduced instance the coordinator wrote, and
//! serves subproblems until `Terminate`:
//!
//! ```text
//! ugd-worker --connect 127.0.0.1:40123 --rank 2 \
//!            --instance /tmp/ugrs-stp-1234-abc.json \
//!            [--status-interval 0.05] [--handicap-ms 0]
//! ```
//!
//! `--handicap-ms` delays every subproblem solve by the given amount —
//! a test/benchmark knob that makes worker-death scenarios reproducible
//! (a handicapped worker is reliably mid-subproblem when killed).

use std::time::Duration;
use ugrs_core::worker::{BaseSolver, ParaControl, SubproblemOutcome};
use ugrs_core::{run_distributed_worker, ProcessCommConfig};
use ugrs_glue::apps::stp::stp_worker_factory;

/// Wraps a base solver with a fixed pre-solve delay, polling the abort
/// flag while waiting so `Terminate`/`AbortSubproblem` stay responsive.
struct DelaySolver<S> {
    inner: S,
    delay: Duration,
}

impl<S: BaseSolver> BaseSolver for DelaySolver<S> {
    type Sub = S::Sub;
    type Sol = S::Sol;

    fn solve_subproblem(
        &mut self,
        sub: &S::Sub,
        known_bound: f64,
        incumbent: Option<&S::Sol>,
        ctl: &mut dyn ParaControl<S::Sub, S::Sol>,
    ) -> SubproblemOutcome {
        let deadline = std::time::Instant::now() + self.delay;
        while std::time::Instant::now() < deadline {
            if ctl.should_abort() {
                return SubproblemOutcome { dual_bound: known_bound, nodes: 0, aborted: true };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.inner.solve_subproblem(sub, known_bound, incumbent, ctl)
    }
}

struct Args {
    connect: String,
    rank: Option<usize>,
    instance: std::path::PathBuf,
    status_interval: f64,
    handicap: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut connect = None;
    let mut rank = None;
    let mut instance = None;
    let mut status_interval = 0.05f64;
    let mut handicap = Duration::ZERO;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--rank" => rank = Some(value("--rank")?.parse::<usize>().map_err(|e| e.to_string())?),
            "--instance" => instance = Some(std::path::PathBuf::from(value("--instance")?)),
            "--status-interval" => {
                status_interval =
                    value("--status-interval")?.parse::<f64>().map_err(|e| e.to_string())?
            }
            "--handicap-ms" => {
                handicap = Duration::from_millis(
                    value("--handicap-ms")?.parse::<u64>().map_err(|e| e.to_string())?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        connect: connect.ok_or("--connect is required")?,
        rank,
        instance: instance.ok_or("--instance is required")?,
        status_interval,
        handicap,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ugd-worker: {e}");
            eprintln!(
                "usage: ugd-worker --connect <addr> --instance <path> \
                 [--rank <n>] [--status-interval <secs>] [--handicap-ms <ms>]"
            );
            std::process::exit(2);
        }
    };
    let inner_factory = match stp_worker_factory(&args.instance) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ugd-worker: cannot load instance {}: {e}", args.instance.display());
            std::process::exit(2);
        }
    };
    let delay = args.handicap;
    let factory: ugrs_core::worker::SolverFactory<DelaySolver<_>> =
        std::sync::Arc::new(move |rank, settings| DelaySolver {
            inner: inner_factory(rank, settings),
            delay,
        });
    if let Err(e) = run_distributed_worker(
        &args.connect,
        args.rank,
        factory,
        Duration::from_secs_f64(args.status_interval),
        &ProcessCommConfig::default(),
    ) {
        eprintln!("ugd-worker: {e}");
        std::process::exit(1);
    }
}
