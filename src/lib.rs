//! # ugrs — parallel state-of-the-art combinatorial optimization solvers
//!
//! A Rust reproduction of the system behind *"An Easy Way to Build
//! Parallel State-of-the-art Combinatorial Optimization Problem Solvers"*
//! (Shinano, Rehfeldt, Gally; ZIB-Report 19-14 / IPDPS 2019): the **UG**
//! parallelization framework, a **SCIP-shaped CIP** branch-cut-and-bound
//! framework, the **SCIP-Jack**-style Steiner tree solver and the
//! **SCIP-SDP**-style mixed integer semidefinite programming solver —
//! plus the LP-simplex and interior-point-SDP substrates they stand on.
//!
//! This crate re-exports the workspace members under stable names:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`ug`] | `ugrs-core` | the UG framework (Supervisor/Worker, racing, checkpointing) |
//! | [`cip`] | `ugrs-cip` | the CIP branch-cut-and-bound framework with plugins |
//! | [`steiner`] | `ugrs-steiner` | the Steiner tree solver (SCIP-Jack analog) |
//! | [`misdp`] | `ugrs-misdp` | the MISDP solver (SCIP-SDP analog) |
//! | [`glue`] | `ugrs-glue` | the ug[SCIP-*,*]-libraries analog |
//! | [`instances`] | `ugrs-instances` | the instance zoo: real-format parsers, generators, catalog |
//! | [`lp`] | `ugrs-lp` | bounded-variable revised simplex |
//! | [`sdp`] | `ugrs-sdp` | interior-point SDP with penalty formulation |
//! | [`linalg`] | `ugrs-linalg` | dense linear algebra kernels |
//!
//! ## Quickstart
//!
//! Solve a PUC-like Steiner instance in parallel with racing ramp-up:
//!
//! ```
//! use ugrs::glue::{stp_racing_settings, ug_solve_stp};
//! use ugrs::steiner::gen::{hypercube, CostScheme};
//! use ugrs::steiner::reduce::ReduceParams;
//! use ugrs::ug::{ParallelOptions, RampUp};
//!
//! let graph = hypercube(3, CostScheme::Perturbed, 7);
//! let options = ParallelOptions {
//!     num_solvers: 2,
//!     ramp_up: RampUp::Racing {
//!         settings: stp_racing_settings(2),
//!         time_trigger: 0.1,
//!         open_nodes_trigger: 16,
//!     },
//!     ..Default::default()
//! };
//! let res = ug_solve_stp(&graph, &ReduceParams::default(), options);
//! assert!(res.solved);
//! let (_edges, cost) = res.tree.unwrap();
//! assert!(cost > 0.0);
//! ```

pub use ugrs_cip as cip;
pub use ugrs_core as ug;
pub use ugrs_glue as glue;
pub use ugrs_instances as instances;
pub use ugrs_linalg as linalg;
pub use ugrs_lp as lp;
pub use ugrs_misdp as misdp;
pub use ugrs_sdp as sdp;
pub use ugrs_steiner as steiner;
